//! Vector clocks over dense thread ids.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::clock::{Clock, ThreadId};

/// Components stored in-struct before spilling to the heap.
///
/// The shipped suite is dominated by programs with at most a handful of
/// simulated threads, so almost every clock on the detector hot paths fits
/// inline and clones are plain copies with no allocation.
const INLINE: usize = 4;

/// Physical storage behind a [`VectorClock`].
///
/// `Inline` holds up to [`INLINE`] components in the struct itself; `Heap`
/// is the spill representation, shared copy-on-write through an [`Arc`] so
/// clone-heavy paths (flushmap records, store provenance, snapshot capture)
/// pay one reference-count bump instead of a `Vec` allocation. Mutation of
/// a shared heap clock goes through [`Arc::make_mut`], which copies only
/// when the allocation is actually aliased.
#[derive(Clone)]
enum Repr {
    Inline([Clock; INLINE]),
    Heap(Arc<Vec<Clock>>),
}

/// A vector clock: one [`Clock`] component per thread.
///
/// Vector clocks are the workhorse of the detector. They implement:
///
/// * the happens-before relation between events ([`happens_before`]),
/// * the consistent-prefix clock vector `CVpre` (§5.1), built as the join of
///   the clock vectors of every pre-crash store the post-crash execution has
///   read from ([`join`]),
/// * the `lastflush` lower bounds on cache-line write-back (§4.1).
///
/// Components default to 0 ("nothing observed from that thread"). The vector
/// grows on demand, so clocks for programs with few threads stay tiny.
///
/// # Representation
///
/// Clocks with at most [`INLINE`] components live entirely in the struct (no
/// heap allocation; `clone` is a copy). Wider clocks spill to a shared
/// copy-on-write heap vector. Physical storage only ever covers a *prefix*
/// of the logical components — everything past it is implicitly zero — and a
/// cached exact maximum component lets [`leq`] and [`join`] skip their
/// component loops when one side trivially dominates (`self.max == 0`, or
/// `self.max > other.max`). The legacy `Vec`-backed layout survives as
/// [`crate::legacy::VectorClock`], the differential oracle these semantics
/// are tested against.
///
/// [`happens_before`]: VectorClock::happens_before
/// [`join`]: VectorClock::join
/// [`leq`]: VectorClock::leq
#[derive(Clone)]
pub struct VectorClock {
    /// Logical component count — exactly the `Vec` length the legacy layout
    /// would have. Observable through [`len`](VectorClock::len) and
    /// equality (trailing explicit zeros are part of a clock's identity,
    /// as they were for the derived `Vec` equality).
    len: u32,
    /// Exact maximum over all components (0 for an empty clock).
    max: Clock,
    repr: Repr,
}

impl Default for VectorClock {
    fn default() -> Self {
        VectorClock {
            len: 0,
            max: 0,
            repr: Repr::Inline([0; INLINE]),
        }
    }
}

impl VectorClock {
    /// Creates an empty clock (all components 0).
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// Creates a clock with a single nonzero component.
    ///
    /// # Examples
    ///
    /// ```
    /// use vclock::{ThreadId, VectorClock};
    /// let cv = VectorClock::singleton(ThreadId::new(2), 5);
    /// assert_eq!(cv.get(ThreadId::new(2)), 5);
    /// assert_eq!(cv.get(ThreadId::new(0)), 0);
    /// ```
    pub fn singleton(thread: ThreadId, clock: Clock) -> Self {
        let mut cv = VectorClock::new();
        cv.set(thread, clock);
        cv
    }

    /// The physically stored component prefix; logical components past its
    /// end are zero.
    #[inline]
    fn phys(&self) -> &[Clock] {
        match &self.repr {
            Repr::Inline(buf) => &buf[..(self.len as usize).min(INLINE)],
            Repr::Heap(v) => v.as_slice(),
        }
    }

    /// Mutable physical storage covering at least `need` components,
    /// spilling inline storage to the heap (or un-sharing an aliased heap
    /// allocation) as required.
    fn phys_mut(&mut self, need: usize) -> &mut [Clock] {
        if need > INLINE {
            if let Repr::Inline(buf) = self.repr {
                let mut v = buf.to_vec();
                v.resize(need, 0);
                self.repr = Repr::Heap(Arc::new(v));
            }
        }
        match &mut self.repr {
            Repr::Inline(buf) => &mut buf[..],
            Repr::Heap(v) => {
                let v = Arc::make_mut(v);
                if v.len() < need {
                    v.resize(need, 0);
                }
                v.as_mut_slice()
            }
        }
    }

    /// Returns the clock component for `thread` (0 if never set).
    #[inline]
    pub fn get(&self, thread: ThreadId) -> Clock {
        self.phys().get(thread.as_usize()).copied().unwrap_or(0)
    }

    /// The largest component value (0 for an empty clock). Cached, so this
    /// is O(1); it backs the dominance fast paths of [`leq`] and [`join`].
    ///
    /// [`leq`]: VectorClock::leq
    /// [`join`]: VectorClock::join
    #[inline]
    pub fn max_component(&self) -> Clock {
        self.max
    }

    /// Sets the clock component for `thread`.
    #[inline]
    pub fn set(&mut self, thread: ThreadId, clock: Clock) {
        let idx = thread.as_usize();
        if idx as u64 >= self.len as u64 {
            self.len = (idx + 1) as u32;
        }
        if clock == 0 && idx >= self.phys().len() {
            // Writing zero past the physical prefix only extends the
            // logical length; storage stays implicit.
            return;
        }
        let slots = self.phys_mut(idx + 1);
        let old = slots[idx];
        slots[idx] = clock;
        if clock >= self.max {
            self.max = clock;
        } else if old == self.max {
            // The overwritten slot may have held the unique maximum.
            self.max = self.phys().iter().copied().max().unwrap_or(0);
        }
    }

    /// Increments `thread`'s component and returns the new value.
    ///
    /// This is how a thread stamps a new event: its own component advances.
    #[inline]
    pub fn tick(&mut self, thread: ThreadId) -> Clock {
        let next = self.get(thread) + 1;
        self.set(thread, next);
        next
    }

    /// Joins `other` into `self` (component-wise maximum).
    ///
    /// Used for acquire synchronization and for accumulating `CVpre`.
    /// Fast paths: joining an all-zero clock only extends the logical
    /// length; joining *into* an all-zero clock shares `other`'s storage
    /// (one `Arc` bump for heap clocks); joining a clock with itself (same
    /// allocation) is a no-op.
    #[inline]
    pub fn join(&mut self, other: &VectorClock) {
        self.len = self.len.max(other.len);
        match (&mut self.repr, &other.repr) {
            (Repr::Inline(mine), Repr::Inline(theirs)) => {
                // Both inline — the overwhelmingly common case (suite
                // programs run at most a handful of threads). Lane maxes
                // over `other`'s physical prefix are exact and
                // unconditional: inline slots at or past a clock's `len`
                // are invariantly zero (`len` never shrinks and
                // zero-writes past the prefix stay implicit), so the
                // skipped tail lanes could only lower `mine`, and the
                // loop body is a straight branch-free max instruction.
                let n = (other.len as usize).min(INLINE);
                for (m, &t) in mine[..n].iter_mut().zip(&theirs[..n]) {
                    *m = (*m).max(t);
                }
                self.max = self.max.max(other.max);
            }
            _ => self.join_spilled(other),
        }
    }

    /// [`join`](VectorClock::join) continuation when either side has
    /// spilled to the heap. Fast paths: joining an all-zero clock is a
    /// no-op (the length was already extended); joining *into* an all-zero
    /// clock shares `other`'s storage (one `Arc` bump); joining a clock
    /// with itself (same allocation) is a no-op.
    fn join_spilled(&mut self, other: &VectorClock) {
        if other.max == 0 {
            return;
        }
        if self.max == 0 {
            self.repr = other.repr.clone();
            self.max = other.max;
            return;
        }
        if let (Repr::Heap(a), Repr::Heap(b)) = (&self.repr, &other.repr) {
            if Arc::ptr_eq(a, b) {
                return;
            }
        }
        let theirs = other.phys();
        let mine = self.phys_mut(theirs.len());
        for (m, &t) in mine.iter_mut().zip(theirs) {
            if t > *m {
                *m = t;
            }
        }
        self.max = self.max.max(other.max);
    }

    /// Returns the component-wise maximum of two clocks.
    pub fn joined(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        out.join(other);
        out
    }

    /// Returns `true` if every component of `self` is `<=` the corresponding
    /// component of `other`.
    ///
    /// For event clock vectors this is the happens-before-or-equal test: the
    /// event stamped `self` happens before (or is) every event whose clock
    /// vector dominates it.
    ///
    /// Fast paths: an all-zero `self` is below everything; a `self` whose
    /// maximum component exceeds `other`'s maximum cannot be below it; two
    /// clocks sharing one heap allocation are equal.
    #[inline]
    pub fn leq(&self, other: &VectorClock) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Inline(mine), Repr::Inline(theirs)) => {
                // Both inline: the cached-max reject answers half the
                // concurrent pairs in one compare, and the remaining
                // full-width lane comparison is exact — slots past either
                // `len` are zero, so `0 <= x` holds while `x <= 0` fails
                // precisely when a real component sticks out past
                // `other`'s prefix. `&` keeps the chain branch-free.
                self.max <= other.max
                    && (mine[0] <= theirs[0])
                        & (mine[1] <= theirs[1])
                        & (mine[2] <= theirs[2])
                        & (mine[3] <= theirs[3])
            }
            _ => self.leq_spilled(other),
        }
    }

    /// [`leq`](VectorClock::leq) continuation when either side has spilled
    /// to the heap. Fast paths: an all-zero `self` is below everything; a
    /// `self` whose maximum component exceeds `other`'s maximum cannot be
    /// below it; two clocks sharing one heap allocation are equal.
    fn leq_spilled(&self, other: &VectorClock) -> bool {
        if self.max == 0 {
            return true;
        }
        if self.max > other.max {
            return false;
        }
        if let (Repr::Heap(a), Repr::Heap(b)) = (&self.repr, &other.repr) {
            if Arc::ptr_eq(a, b) {
                return true;
            }
        }
        let (mine, theirs) = (self.phys(), other.phys());
        let shared = mine.len().min(theirs.len());
        mine[..shared]
            .iter()
            .zip(&theirs[..shared])
            .all(|(&m, &t)| m <= t)
            && mine[shared..].iter().all(|&c| c == 0)
    }

    /// Strict happens-before: `self <= other` and `self != other`.
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.leq(other) && !other.leq(self)
    }

    /// Returns `true` if neither clock happens before the other.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }

    /// Tests whether the single event `(thread, clock)` is contained in the
    /// prefix described by this clock vector.
    ///
    /// This is the test Yashme uses to decide whether a flush (labelled by
    /// the flushing thread and its clock) lies inside the consistent prefix
    /// `CVpre`: the flush is included iff `clock <= CVpre[thread]`.
    pub fn contains(&self, thread: ThreadId, clock: Clock) -> bool {
        clock <= self.get(thread)
    }

    /// Returns `true` if all components are zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.max == 0
    }

    /// Number of allocated components (threads seen so far).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Iterates over `(thread, clock)` pairs with nonzero clocks.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, Clock)> + '_ {
        self.phys()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (ThreadId::new(i as u32), c))
    }

    /// Resets every component to zero, releasing any shared storage.
    pub fn clear(&mut self) {
        *self = VectorClock::default();
    }

    /// The logical components, zero-extended to [`len`](VectorClock::len) —
    /// exactly the `Vec` the legacy layout would hold.
    fn logical(&self) -> impl Iterator<Item = Clock> + '_ {
        let phys = self.phys();
        (0..self.len as usize).map(move |i| phys.get(i).copied().unwrap_or(0))
    }
}

impl PartialEq for VectorClock {
    fn eq(&self, other: &Self) -> bool {
        // Legacy equality was derived `Vec` equality: lengths must match
        // (trailing explicit zeros are significant) and so must every
        // component.
        self.len == other.len && self.logical().eq(other.logical())
    }
}

impl Eq for VectorClock {}

impl Hash for VectorClock {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Mirror the derived `Hash` of the legacy `Vec` layout: length
        // prefix, then each logical component. Physical representation
        // (inline vs heap, shared vs owned) must not leak into the hash.
        state.write_usize(self.len as usize);
        for c in self.logical() {
            c.hash(state);
        }
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render exactly like the legacy derived Debug so fingerprints and
        // goldens are representation-independent.
        f.debug_struct("VectorClock")
            .field("components", &DebugComponents(self))
            .finish()
    }
}

struct DebugComponents<'a>(&'a VectorClock);

impl fmt::Debug for DebugComponents<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.0.logical()).finish()
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        for (t, c) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{t}:{c}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<(ThreadId, Clock)> for VectorClock {
    fn from_iter<I: IntoIterator<Item = (ThreadId, Clock)>>(iter: I) -> Self {
        let mut cv = VectorClock::new();
        for (t, c) in iter {
            cv.set(t, c);
        }
        cv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn empty_clock_is_leq_everything() {
        let a = VectorClock::new();
        let b = VectorClock::singleton(t(0), 3);
        assert!(a.leq(&b));
        assert!(a.leq(&a));
        assert!(a.is_empty());
        assert!(!b.is_empty());
    }

    #[test]
    fn tick_advances_own_component() {
        let mut cv = VectorClock::new();
        assert_eq!(cv.tick(t(1)), 1);
        assert_eq!(cv.tick(t(1)), 2);
        assert_eq!(cv.get(t(1)), 2);
        assert_eq!(cv.get(t(0)), 0);
    }

    #[test]
    fn join_is_componentwise_max() {
        let a = VectorClock::from_iter([(t(0), 5), (t(1), 1)]);
        let b = VectorClock::from_iter([(t(0), 2), (t(2), 7)]);
        let j = a.joined(&b);
        assert_eq!(j.get(t(0)), 5);
        assert_eq!(j.get(t(1)), 1);
        assert_eq!(j.get(t(2)), 7);
    }

    #[test]
    fn happens_before_is_strict() {
        let a = VectorClock::singleton(t(0), 1);
        let mut b = a.clone();
        b.tick(t(1));
        assert!(a.happens_before(&b));
        assert!(!b.happens_before(&a));
        assert!(!a.happens_before(&a));
    }

    #[test]
    fn concurrent_clocks() {
        let a = VectorClock::singleton(t(0), 1);
        let b = VectorClock::singleton(t(1), 1);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
        assert!(!a.concurrent_with(&a));
    }

    #[test]
    fn contains_tests_prefix_membership() {
        let cv = VectorClock::from_iter([(t(0), 4), (t(1), 2)]);
        assert!(cv.contains(t(0), 4));
        assert!(cv.contains(t(0), 1));
        assert!(!cv.contains(t(0), 5));
        assert!(!cv.contains(t(2), 1));
    }

    #[test]
    fn display_formats_nonzero_components() {
        let cv = VectorClock::from_iter([(t(0), 1), (t(2), 3)]);
        assert_eq!(format!("{cv}"), "[T0:1, T2:3]");
    }

    #[test]
    fn ragged_lengths_compare_correctly() {
        // A longer vector with a nonzero tail must not be leq a shorter one.
        let long = VectorClock::from_iter([(t(3), 1)]);
        let short = VectorClock::singleton(t(0), 9);
        assert!(!long.leq(&short));
        assert!(!short.leq(&long));
    }

    #[test]
    fn spills_past_inline_capacity() {
        let mut cv = VectorClock::new();
        for i in 0..12u32 {
            cv.set(t(i), u64::from(i) + 1);
        }
        for i in 0..12u32 {
            assert_eq!(cv.get(t(i)), u64::from(i) + 1);
        }
        assert_eq!(cv.len(), 12);
        assert_eq!(cv.max_component(), 12);
    }

    #[test]
    fn shared_heap_clone_diverges_on_write() {
        let mut a = VectorClock::new();
        for i in 0..8u32 {
            a.set(t(i), 5);
        }
        let b = a.clone(); // Arc bump, shared storage
        a.tick(t(0));
        assert_eq!(a.get(t(0)), 6, "writer sees its own mutation");
        assert_eq!(b.get(t(0)), 5, "clone is unaffected (copy-on-write)");
        assert!(b.happens_before(&a));
    }

    #[test]
    fn trailing_zero_length_is_part_of_identity() {
        // Legacy derived Vec equality distinguished [1] from [1, 0].
        let a = VectorClock::singleton(t(0), 1);
        let mut b = VectorClock::singleton(t(0), 1);
        b.set(t(1), 0);
        assert_ne!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        // But they are mutually leq: trailing zeros don't order clocks.
        assert!(a.leq(&b) && b.leq(&a));
    }

    #[test]
    fn max_stays_exact_when_maximum_is_overwritten() {
        let mut cv = VectorClock::from_iter([(t(0), 9), (t(1), 4)]);
        assert_eq!(cv.max_component(), 9);
        cv.set(t(0), 1);
        assert_eq!(cv.max_component(), 4);
        cv.set(t(1), 0);
        assert_eq!(cv.max_component(), 1);
    }

    #[test]
    fn debug_matches_legacy_derived_format() {
        let mut cv = VectorClock::new();
        cv.set(t(2), 3);
        assert_eq!(format!("{cv:?}"), "VectorClock { components: [0, 0, 3] }");
    }

    #[test]
    fn join_into_empty_shares_heap_storage() {
        let mut wide = VectorClock::new();
        for i in 0..10u32 {
            wide.set(t(i), 2);
        }
        let mut acc = VectorClock::new();
        acc.join(&wide);
        assert_eq!(acc, wide);
        // Self-join through the shared allocation is a no-op.
        let snapshot = acc.clone();
        acc.join(&wide);
        assert_eq!(acc, snapshot);
    }
}
