//! Scalar clock types: thread identifiers, per-thread clocks, and the global
//! cache-commit sequence counter.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A dense identifier for a simulated thread.
///
/// Thread ids are assigned by the execution engine starting from zero for the
/// main thread. They index the components of a [`VectorClock`].
///
/// [`VectorClock`]: crate::VectorClock
///
/// # Examples
///
/// ```
/// use vclock::ThreadId;
/// let main = ThreadId::MAIN;
/// assert_eq!(main.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(u32);

impl ThreadId {
    /// The main thread of an execution.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Creates a thread id from a dense index.
    pub const fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the dense index of this thread.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for vector indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u32> for ThreadId {
    fn from(index: u32) -> Self {
        ThreadId(index)
    }
}

/// A per-thread logical clock value.
///
/// Each event a thread performs increments its clock; clock `0` means "no
/// event observed". These are the per-component values of a
/// [`VectorClock`](crate::VectorClock).
pub type Clock = u64;

/// A global sequence number.
///
/// Sequence numbers record the total order in which stores, `clflush`, and
/// `sfence` instructions take effect on the (simulated) cache. This is the
/// paper's `σ_curr` counter (§6): "a global sequence number counter is used
/// to assign increasing sequence numbers to stores, clflush, and sfence
/// instructions".
pub type Seq = u64;

/// A monotonically increasing allocator for [`Seq`] numbers.
///
/// The counter starts at 1 so that `0` can serve as "before everything".
///
/// # Examples
///
/// ```
/// use vclock::SeqCounter;
/// let ctr = SeqCounter::new();
/// let a = ctr.next();
/// let b = ctr.next();
/// assert!(b > a);
/// ```
#[derive(Debug)]
pub struct SeqCounter {
    next: AtomicU64,
}

impl SeqCounter {
    /// Creates a counter whose first issued sequence number is 1.
    pub fn new() -> Self {
        SeqCounter {
            next: AtomicU64::new(1),
        }
    }

    /// Issues the next sequence number.
    pub fn next(&self) -> Seq {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the most recently issued sequence number (0 if none).
    pub fn current(&self) -> Seq {
        self.next.load(Ordering::Relaxed) - 1
    }

    /// Resets the counter so the next issued number is 1.
    pub fn reset(&self) {
        self.next.store(1, Ordering::Relaxed);
    }
}

impl Default for SeqCounter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_counter_monotone() {
        let c = SeqCounter::new();
        assert_eq!(c.current(), 0);
        let a = c.next();
        assert_eq!(a, 1);
        assert_eq!(c.current(), 1);
        let b = c.next();
        assert_eq!(b, 2);
        c.reset();
        assert_eq!(c.next(), 1);
    }

    #[test]
    fn thread_id_from_u32() {
        let t: ThreadId = 3u32.into();
        assert_eq!(t, ThreadId::new(3));
        assert!(ThreadId::new(1) < ThreadId::new(2));
    }
}
