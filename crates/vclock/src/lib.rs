//! Vector clocks, thread identifiers, and sequence numbers.
//!
//! This crate provides the clock machinery used throughout the Yashme
//! reproduction:
//!
//! * [`ThreadId`] — a dense identifier for a simulated thread.
//! * [`Clock`] — a per-thread logical clock value (the labels the paper
//!   assigns to individual events within a thread).
//! * [`Seq`] — a *global* sequence number recording the total order in which
//!   stores, `clflush`, and `sfence` instructions take effect on the cache
//!   (the paper's `σ_curr` counter, §6).
//! * [`VectorClock`] — a map from threads to clocks used to compute the
//!   happens-before relation and the consistent-prefix clock vector `CVpre`.
//!
//! # Examples
//!
//! ```
//! use vclock::{ThreadId, VectorClock};
//!
//! let t0 = ThreadId::new(0);
//! let t1 = ThreadId::new(1);
//! let mut a = VectorClock::new();
//! a.tick(t0); // t0 performs an event
//! let mut b = VectorClock::new();
//! b.tick(t1);
//! b.join(&a); // t1 acquires from t0
//! assert!(a.happens_before(&b));
//! assert!(!b.happens_before(&a));
//! ```

mod clock;
pub mod legacy;
mod vector;

pub use clock::{Clock, Seq, SeqCounter, ThreadId};
pub use vector::VectorClock;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_roundtrip() {
        let t = ThreadId::new(7);
        assert_eq!(t.index(), 7);
        assert_eq!(format!("{t}"), "T7");
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThreadId>();
        assert_send_sync::<VectorClock>();
        assert_send_sync::<SeqCounter>();
    }
}
