//! The original `Vec`-backed vector-clock representation, kept as a
//! differential oracle.
//!
//! [`crate::VectorClock`] replaced this layout with an inline small-vector +
//! copy-on-write representation (see `vector.rs`). This module preserves the
//! old implementation bit-for-bit so property tests can drive both layouts
//! through identical operation sequences and assert observational equality,
//! and so `bench --bin vclock` can measure the speedup honestly. It is not
//! used on any detector path.

use std::fmt;

use crate::clock::{Clock, ThreadId};

/// The pre-overhaul vector clock: one heap-allocated `Vec` per clock.
///
/// Semantics are the reference: every operation on [`crate::VectorClock`]
/// must be observationally identical to the same operation here.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct VectorClock {
    components: Vec<Clock>,
}

impl VectorClock {
    /// Creates an empty clock (all components 0).
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// Creates a clock with a single nonzero component.
    pub fn singleton(thread: ThreadId, clock: Clock) -> Self {
        let mut cv = VectorClock::new();
        cv.set(thread, clock);
        cv
    }

    /// Returns the clock component for `thread` (0 if never set).
    pub fn get(&self, thread: ThreadId) -> Clock {
        self.components.get(thread.as_usize()).copied().unwrap_or(0)
    }

    /// Sets the clock component for `thread`.
    pub fn set(&mut self, thread: ThreadId, clock: Clock) {
        let idx = thread.as_usize();
        if idx >= self.components.len() {
            self.components.resize(idx + 1, 0);
        }
        self.components[idx] = clock;
    }

    /// Increments `thread`'s component and returns the new value.
    pub fn tick(&mut self, thread: ThreadId) -> Clock {
        let next = self.get(thread) + 1;
        self.set(thread, next);
        next
    }

    /// Joins `other` into `self` (component-wise maximum).
    pub fn join(&mut self, other: &VectorClock) {
        if other.components.len() > self.components.len() {
            self.components.resize(other.components.len(), 0);
        }
        for (mine, theirs) in self.components.iter_mut().zip(other.components.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Returns the component-wise maximum of two clocks.
    pub fn joined(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        out.join(other);
        out
    }

    /// Returns `true` if every component of `self` is `<=` the corresponding
    /// component of `other`.
    pub fn leq(&self, other: &VectorClock) -> bool {
        let shared = self.components.len().min(other.components.len());
        self.components[..shared]
            .iter()
            .zip(&other.components[..shared])
            .all(|(&mine, &theirs)| mine <= theirs)
            && self.components[shared..].iter().all(|&c| c == 0)
    }

    /// Strict happens-before: `self <= other` and `self != other`.
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.leq(other) && !other.leq(self)
    }

    /// Returns `true` if neither clock happens before the other.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }

    /// Tests whether the single event `(thread, clock)` is contained in the
    /// prefix described by this clock vector.
    pub fn contains(&self, thread: ThreadId, clock: Clock) -> bool {
        clock <= self.get(thread)
    }

    /// Returns `true` if all components are zero.
    pub fn is_empty(&self) -> bool {
        self.components.iter().all(|&c| c == 0)
    }

    /// Number of allocated components (threads seen so far).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Iterates over `(thread, clock)` pairs with nonzero clocks.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, Clock)> + '_ {
        self.components
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (ThreadId::new(i as u32), c))
    }

    /// Resets every component to zero.
    pub fn clear(&mut self) {
        self.components.clear();
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        for (t, c) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{t}:{c}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<(ThreadId, Clock)> for VectorClock {
    fn from_iter<I: IntoIterator<Item = (ThreadId, Clock)>>(iter: I) -> Self {
        let mut cv = VectorClock::new();
        for (t, c) in iter {
            cv.set(t, c);
        }
        cv
    }
}
