//! Zipfian multi-client traffic generator for soak runs.
//!
//! The evaluation drivers ([`crate::redis::program`],
//! [`crate::memcached::program`]) send a handful of commands — enough to
//! expose the Table 4 races, far too few to say anything about sustained
//! throughput or memory growth. This module scales the same client/server
//! shape to millions of operations: many simulated client threads push
//! batched commands over the volatile [`Wire`], keys drawn from a zipfian
//! distribution (hot-key skew, like YCSB), with a configurable
//! set/get/del mix.
//!
//! Two disciplines keep the workload sound under the cooperative
//! scheduler:
//!
//! 1. **Clients yield once per batch.** [`Wire`] sends are pure host-mutex
//!    operations and never reach the scheduler, so a client that never
//!    yields would flood the queue with its entire operation budget before
//!    the server runs once. A [`Ctx::sched_yield`] per batch bounds queue
//!    occupancy at roughly `clients × batch`.
//! 2. **The server counts `Quit`s.** Every client ends its stream with
//!    [`Command::Quit`]; the serve loop exits when all of them arrived, so
//!    no tail of commands is silently dropped.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use jaaru::{Ctx, Program};

use crate::client::{Command, Wire};
use crate::memcached::Memcached;
use crate::redis::Redis;

/// Which server port the traffic drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Memcached-pmem: fixed slab pool, in-place item reuse — live state
    /// plateaus at the pool size however long the run.
    Memcached,
    /// Redis-pmem: every `SET` allocates a fresh dict entry, so the arena
    /// (and the provenance roots over it) grows with the run — the
    /// unbounded contrast case.
    Redis,
}

impl Backend {
    /// Parses `"memcached"` / `"redis"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Backend> {
        if s.eq_ignore_ascii_case("memcached") {
            Some(Backend::Memcached)
        } else if s.eq_ignore_ascii_case("redis") {
            Some(Backend::Redis)
        } else {
            None
        }
    }

    /// The backend's name as accepted by [`Backend::parse`].
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Memcached => "memcached",
            Backend::Redis => "redis",
        }
    }
}

/// Items per slab the soak-sized memcached pool uses.
pub const SOAK_ITEMS_PER_SLAB: u64 = 8;

/// Traffic shape. `Copy` so program phases (which may run many times) can
/// capture it by value.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Server port under test.
    pub backend: Backend,
    /// Concurrent client threads.
    pub clients: usize,
    /// Operations each client sends (total ops = `clients × ops_per_client`).
    pub ops_per_client: u64,
    /// Key-space size; keys are zipfian ranks `0..keys`.
    pub keys: u64,
    /// Zipf exponent `s` (weight of rank `r` is `1/r^s`); `0.0` is uniform,
    /// `0.99` matches YCSB's default skew.
    pub zipf_exponent: f64,
    /// Percent of operations that are `SET`.
    pub set_pct: u32,
    /// Percent of operations that are `DEL` (the rest are `GET`).
    pub del_pct: u32,
    /// Commands per [`Wire::send_all`] batch (one scheduler yield each).
    pub batch: usize,
    /// Seed for the per-client command streams.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            backend: Backend::Memcached,
            clients: 4,
            ops_per_client: 25_000,
            keys: 256,
            zipf_exponent: 0.99,
            set_pct: 50,
            del_pct: 10,
            batch: 64,
            seed: 15,
        }
    }
}

impl TrafficConfig {
    /// Total operations the workload sends (excluding the `Quit`s).
    pub fn total_ops(&self) -> u64 {
        self.clients as u64 * self.ops_per_client
    }

    /// Slab count sizing the memcached pool to the key space, so every key
    /// has a home slot and updates reuse it in place.
    pub fn num_slabs(&self) -> u64 {
        self.keys.div_ceil(SOAK_ITEMS_PER_SLAB).max(1)
    }
}

/// A zipfian sampler over ranks `0..n`, precomputed as a fixed-point CDF
/// (the vendored `rand` has no float ranges) and sampled by binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<u64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n > 0, "zipf over an empty key space");
        let weights: Vec<f64> = (1..=n).map(|rank| 1.0 / (rank as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf: Vec<u64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                (acc * u64::MAX as f64) as u64
            })
            .collect();
        // Float rounding must not leave a gap at the top of the draw space.
        *cdf.last_mut().expect("n > 0") = u64::MAX;
        Zipf { cdf }
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let draw = rng.next_u64();
        let rank = self.cdf.partition_point(|&c| c < draw);
        rank.min(self.cdf.len() - 1) as u64
    }
}

/// Builds one client's command stream and feeds it to `wire` in batches,
/// yielding to the scheduler after each batch, ending with [`Command::Quit`].
pub fn run_client(cfg: &TrafficConfig, id: usize, wire: &Wire, ctx: &mut Ctx) {
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let zipf = Zipf::new(cfg.keys, cfg.zipf_exponent);
    let mut value = 0u64;
    let mut sent = 0u64;
    while sent < cfg.ops_per_client {
        let n = (cfg.ops_per_client - sent).min(cfg.batch.max(1) as u64);
        let mut batch = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let key = zipf.sample(&mut rng);
            let roll: u32 = rng.gen_range(0..100);
            batch.push(if roll < cfg.set_pct {
                value += 1;
                Command::Set(key, (id as u64) << 32 | value)
            } else if roll < cfg.set_pct + cfg.del_pct {
                Command::Del(key)
            } else {
                Command::Get(key)
            });
        }
        wire.send_all(batch);
        sent += n;
        ctx.sched_yield();
    }
    wire.send(Command::Quit);
}

/// The key-value surface the traffic drives, implemented by both server
/// ports.
pub trait KvServer {
    /// Stores `key → value`.
    fn set(&mut self, ctx: &mut Ctx, key: u64, value: u64) -> bool;
    /// Looks `key` up.
    fn get(&mut self, ctx: &mut Ctx, key: u64) -> Option<u64>;
    /// Deletes `key`.
    fn del(&mut self, ctx: &mut Ctx, key: u64) -> bool;
}

impl KvServer for Memcached {
    fn set(&mut self, ctx: &mut Ctx, key: u64, value: u64) -> bool {
        Memcached::set(self, ctx, key, value)
    }
    fn get(&mut self, ctx: &mut Ctx, key: u64) -> Option<u64> {
        Memcached::get(self, ctx, key)
    }
    fn del(&mut self, ctx: &mut Ctx, key: u64) -> bool {
        Memcached::del(self, ctx, key)
    }
}

impl KvServer for Redis {
    fn set(&mut self, ctx: &mut Ctx, key: u64, value: u64) -> bool {
        Redis::set(self, ctx, key, value)
    }
    fn get(&mut self, ctx: &mut Ctx, key: u64) -> Option<u64> {
        Redis::get(self, ctx, key)
    }
    fn del(&mut self, ctx: &mut Ctx, key: u64) -> bool {
        Redis::del(self, ctx, key)
    }
}

/// Serves drained command batches until every client's `Quit` arrived.
pub fn serve_clients(
    server: &mut dyn KvServer,
    ctx: &mut Ctx,
    wire: &Wire,
    clients: usize,
    batch: usize,
) {
    let mut quits = 0;
    while quits < clients {
        let cmds = wire.drain(batch.max(1));
        if cmds.is_empty() {
            ctx.sched_yield();
            continue;
        }
        for cmd in cmds {
            match cmd {
                Command::Set(k, v) => {
                    server.set(ctx, k, v);
                }
                Command::Get(k) => {
                    let _ = server.get(ctx, k);
                }
                Command::Del(k) => {
                    server.del(ctx, k);
                }
                Command::Quit => quits += 1,
            }
        }
    }
}

/// The full soak program: clients and server in the pre-crash phase, a
/// restart plus spot lookups of the hottest keys post-crash.
pub fn soak_program(cfg: TrafficConfig) -> Program {
    Program::new(format!("soak-{}", cfg.backend.name()))
        .pre_crash(move |ctx: &mut Ctx| {
            let wire = Wire::new();
            let handles: Vec<_> = (0..cfg.clients)
                .map(|id| {
                    let w = wire.clone();
                    ctx.spawn(move |c: &mut Ctx| run_client(&cfg, id, &w, c))
                })
                .collect();
            match cfg.backend {
                Backend::Memcached => {
                    let mut server =
                        Memcached::format_sized(ctx, cfg.num_slabs(), SOAK_ITEMS_PER_SLAB);
                    serve_clients(&mut server, ctx, &wire, cfg.clients, cfg.batch);
                }
                Backend::Redis => {
                    let mut server = Redis::create(ctx);
                    serve_clients(&mut server, ctx, &wire, cfg.clients, cfg.batch);
                }
            }
            for h in handles {
                ctx.join(h);
            }
        })
        .post_crash(move |ctx: &mut Ctx| {
            let hot = cfg.keys.min(4);
            match cfg.backend {
                Backend::Memcached => {
                    if let Some((mut server, _recovered)) =
                        Memcached::restart_sized(ctx, cfg.num_slabs(), SOAK_ITEMS_PER_SLAB)
                    {
                        for key in 0..hot {
                            let _ = KvServer::get(&mut server, ctx, key);
                        }
                    }
                }
                Backend::Redis => {
                    if let Some(mut server) = Redis::restart(ctx) {
                        for key in 0..hot {
                            let _ = KvServer::get(&mut server, ctx, key);
                        }
                    }
                }
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaaru::Engine;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = Zipf::new(64, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 64];
        for _ in 0..10_000 {
            let rank = zipf.sample(&mut rng);
            assert!(rank < 64);
            counts[rank as usize] += 1;
        }
        // Rank 0 is the hottest and the tail is cold but nonempty.
        assert!(counts[0] > counts[32] && counts[0] > 10 * counts[63].max(1));
        assert!(counts.iter().sum::<u64>() == 10_000);
    }

    #[test]
    fn uniform_exponent_is_flat() {
        let zipf = Zipf::new(16, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u64; 16];
        for _ in 0..16_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((600..1400).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn soak_session_completes_on_both_backends() {
        for backend in [Backend::Memcached, Backend::Redis] {
            let cfg = TrafficConfig {
                backend,
                clients: 2,
                ops_per_client: 200,
                keys: 32,
                batch: 16,
                ..TrafficConfig::default()
            };
            let run = Engine::run_plain(&soak_program(cfg), 5);
            assert!(run.panics.is_empty(), "{backend:?}: {:?}", run.panics);
            // Every client op plus the quits reached the server: the ops
            // counter floor is one simulated event per command.
            assert!(run.stats.loads + run.stats.stores_executed > cfg.total_ops());
        }
    }

    #[test]
    fn soak_traffic_is_deterministic() {
        let cfg = TrafficConfig {
            clients: 2,
            ops_per_client: 100,
            keys: 16,
            ..TrafficConfig::default()
        };
        let a = Engine::run_plain(&soak_program(cfg), 9);
        let b = Engine::run_plain(&soak_program(cfg), 9);
        assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
        assert_eq!(a.points, b.points);
    }
}
