//! Memcached-pmem: the persistent slab allocator (`pslab.c`) and item store.
//!
//! Memcached-pmem keeps its slabs in PM and reconstructs the volatile hash
//! index at restart by scanning them. The port preserves the four racy
//! fields of Table 4: the pool-header `valid` flag, the per-slab `id`
//! written when a slab is assigned to a size class, and the per-item
//! `it_flags`/`cas` metadata written when an item is linked.

use jaaru::{Atomicity, Ctx, Program};
use pmdk::libpmem::pmem_persist;
use pmem::Addr;

use crate::client::{Command, Wire};
use crate::labels::{ITEM_CAS, ITEM_IT_FLAGS, PSLAB_ID, PSLAB_VALID};

/// Slabs in the pool.
pub const NUM_SLABS: u64 = 2;
/// Items per slab.
pub const ITEMS_PER_SLAB: u64 = 4;

// Pool header root slots.
const SLOT_SIGNATURE: u64 = 20;
const SLOT_VALID: u64 = 21;
const SLOT_SLABS: u64 = 22;

const SIGNATURE: u64 = 0x6d63_6432_706d_656d; // "mcd2pmem"

// Slab layout: { id u32, pad, items... } — items start at 64 bytes.
const SLAB_HDR_BYTES: u64 = 64;
// Item layout: { it_flags u8, pad, cas u64, key u64, value u64 }.
const ITEM_STRIDE: u64 = 32;
const OFF_IT_FLAGS: u64 = 0;
const OFF_CAS: u64 = 8;
const OFF_KEY: u64 = 16;
const OFF_VALUE: u64 = 24;
/// Byte size of one slab with the default geometry.
pub const SLAB_BYTES: u64 = slab_bytes(ITEMS_PER_SLAB);

/// Byte size of one slab holding `items_per_slab` items.
pub const fn slab_bytes(items_per_slab: u64) -> u64 {
    SLAB_HDR_BYTES + items_per_slab * ITEM_STRIDE
}

const ITEM_LINKED: u8 = 1;

/// The memcached-pmem server state.
#[derive(Debug)]
pub struct Memcached {
    slabs: Addr,
    /// Volatile: next cas value.
    cas_counter: u64,
    /// Pool geometry (volatile configuration, like memcached's `-m`/`-I`
    /// flags): slab count and items per slab.
    num_slabs: u64,
    items_per_slab: u64,
    /// Volatile: which slabs have been assigned ids.
    assigned: Vec<bool>,
}

impl Memcached {
    /// Formats the persistent slab pool (like `pslab_create`) with the
    /// default geometry.
    pub fn format(ctx: &mut Ctx) -> Memcached {
        Memcached::format_sized(ctx, NUM_SLABS, ITEMS_PER_SLAB)
    }

    /// [`Memcached::format`] with explicit pool geometry. The soak traffic
    /// generator sizes the pool to its key space so updates reuse item
    /// slots in place — the bounded-live-state workload.
    pub fn format_sized(ctx: &mut Ctx, num_slabs: u64, items_per_slab: u64) -> Memcached {
        let slab_bytes = slab_bytes(items_per_slab);
        let slabs = ctx.alloc_line_aligned(num_slabs * slab_bytes);
        ctx.memset(slabs, 0, num_slabs * slab_bytes, "pslab format memset");
        pmem_persist(ctx, slabs, num_slabs * slab_bytes, "pslab.format persist");
        ctx.store_u64(
            ctx.root_slot(SLOT_SIGNATURE),
            SIGNATURE,
            Atomicity::Plain,
            "pslab_pool.signature",
        );
        ctx.store_u64(
            ctx.root_slot(SLOT_SLABS),
            slabs.raw(),
            Atomicity::Plain,
            "pslab_pool.slabs",
        );
        pmem_persist(
            ctx,
            ctx.root_slot(SLOT_SIGNATURE),
            8,
            "pslab_pool.signature persist",
        );
        pmem_persist(
            ctx,
            ctx.root_slot(SLOT_SLABS),
            8,
            "pslab_pool.slabs persist",
        );
        // The racy store of bug #2: a plain flag write marking the pool
        // usable.
        ctx.store_u8(ctx.root_slot(SLOT_VALID), 1, Atomicity::Plain, PSLAB_VALID);
        pmem_persist(
            ctx,
            ctx.root_slot(SLOT_VALID),
            1,
            "pslab_pool.valid persist",
        );
        Memcached {
            slabs,
            cas_counter: 0,
            num_slabs,
            items_per_slab,
            assigned: vec![false; num_slabs as usize],
        }
    }

    fn slab_addr(&self, slab: u64) -> Addr {
        self.slabs + slab * slab_bytes(self.items_per_slab)
    }

    fn item_addr(&self, slab: u64, item: u64) -> Addr {
        self.slab_addr(slab) + SLAB_HDR_BYTES + item * ITEM_STRIDE
    }

    /// Stores `key → value` (the `set` command): lazily assigns the slab's
    /// id (bug #3), writes the payload, persists it, then writes the racy
    /// `cas` (bug #5) and `it_flags` (bug #4) metadata.
    pub fn set(&mut self, ctx: &mut Ctx, key: u64, value: u64) -> bool {
        let slab = key % self.num_slabs;
        if !self.assigned[slab as usize] {
            // do_slabs_newslab: assign the slab to a size class.
            let id_addr = self.slab_addr(slab);
            ctx.store_u32(id_addr, slab as u32 + 1, Atomicity::Plain, PSLAB_ID);
            pmem_persist(ctx, id_addr, 4, "pslab.id persist");
            self.assigned[slab as usize] = true;
        }
        for i in 0..self.items_per_slab {
            let item = self.item_addr(slab, i);
            let flags = ctx.load_u8(item + OFF_IT_FLAGS, Atomicity::Plain);
            let existing = ctx.load_u64(item + OFF_KEY, Atomicity::Plain);
            if flags != ITEM_LINKED || existing == key {
                // Payload first, fully persisted...
                ctx.store_u64(item + OFF_KEY, key, Atomicity::Plain, "item.key");
                ctx.store_u64(item + OFF_VALUE, value, Atomicity::Plain, "item.value");
                pmem_persist(ctx, item + OFF_KEY, 16, "item.payload persist");
                // ...then the racy metadata.
                self.cas_counter += 1;
                ctx.store_u64(item + OFF_CAS, self.cas_counter, Atomicity::Plain, ITEM_CAS);
                ctx.store_u8(
                    item + OFF_IT_FLAGS,
                    ITEM_LINKED,
                    Atomicity::Plain,
                    ITEM_IT_FLAGS,
                );
                pmem_persist(ctx, item, ITEM_STRIDE, "item.meta persist");
                return true;
            }
        }
        false
    }

    /// Deletes `key` (the `delete` command): unlinking writes the racy
    /// `it_flags` field again.
    pub fn del(&mut self, ctx: &mut Ctx, key: u64) -> bool {
        let slab = key % self.num_slabs;
        for i in 0..self.items_per_slab {
            let item = self.item_addr(slab, i);
            if ctx.load_u8(item + OFF_IT_FLAGS, Atomicity::Plain) == ITEM_LINKED
                && ctx.load_u64(item + OFF_KEY, Atomicity::Plain) == key
            {
                ctx.store_u8(item + OFF_IT_FLAGS, 0, Atomicity::Plain, ITEM_IT_FLAGS);
                pmem_persist(ctx, item, 1, "item.unlink persist");
                return true;
            }
        }
        false
    }

    /// Looks `key` up (the `get` command).
    pub fn get(&self, ctx: &mut Ctx, key: u64) -> Option<u64> {
        let slab = key % self.num_slabs;
        for i in 0..self.items_per_slab {
            let item = self.item_addr(slab, i);
            if ctx.load_u8(item + OFF_IT_FLAGS, Atomicity::Plain) == ITEM_LINKED
                && ctx.load_u64(item + OFF_KEY, Atomicity::Plain) == key
            {
                return Some(ctx.load_u64(item + OFF_VALUE, Atomicity::Plain));
            }
        }
        None
    }

    /// Restart path (like `pslab_check` + index rebuild): validates the
    /// pool flag, reads every slab id, and scans items — the four
    /// race-observing loads of Table 4. Returns the rebuilt server and the
    /// number of recovered items, or `None` if the pool is not valid.
    pub fn restart(ctx: &mut Ctx) -> Option<(Memcached, u64)> {
        Memcached::restart_sized(ctx, NUM_SLABS, ITEMS_PER_SLAB)
    }

    /// [`Memcached::restart`] for a pool created by
    /// [`Memcached::format_sized`]. The geometry is volatile configuration,
    /// so the restarting server must be told the same sizes it was
    /// formatted with.
    pub fn restart_sized(
        ctx: &mut Ctx,
        num_slabs: u64,
        items_per_slab: u64,
    ) -> Option<(Memcached, u64)> {
        if ctx.load_u8(ctx.root_slot(SLOT_VALID), Atomicity::Plain) != 1 {
            return None;
        }
        let sig = ctx.load_u64(ctx.root_slot(SLOT_SIGNATURE), Atomicity::Plain);
        if sig != SIGNATURE {
            return None;
        }
        let slabs = Addr(ctx.load_u64(ctx.root_slot(SLOT_SLABS), Atomicity::Plain));
        if slabs.raw() < Addr::BASE.raw() || slabs.raw() > Addr::BASE.raw() + (1 << 30) {
            return None;
        }
        let mut server = Memcached {
            slabs,
            cas_counter: 0,
            num_slabs,
            items_per_slab,
            assigned: vec![false; num_slabs as usize],
        };
        let mut recovered = 0;
        for s in 0..num_slabs {
            let id = ctx.load_u32(server.slab_addr(s), Atomicity::Plain);
            server.assigned[s as usize] = id != 0;
            for i in 0..items_per_slab {
                let item = server.item_addr(s, i);
                if ctx.load_u8(item + OFF_IT_FLAGS, Atomicity::Plain) == ITEM_LINKED {
                    let cas = ctx.load_u64(item + OFF_CAS, Atomicity::Plain);
                    server.cas_counter = server.cas_counter.max(cas);
                    let _key = ctx.load_u64(item + OFF_KEY, Atomicity::Plain);
                    recovered += 1;
                }
            }
        }
        Some((server, recovered))
    }

    /// Runs the server loop, draining `wire` in batches until `Quit`.
    ///
    /// Batching takes the wire's host mutex once per
    /// [`Wire::drain`] instead of once per command; the simulated
    /// operations (and hence the engine's event stream) are identical to
    /// one-at-a-time `recv`, since commands execute in the same FIFO order
    /// and the scheduler is only consulted when the wire is idle.
    pub fn serve(&mut self, ctx: &mut Ctx, wire: &Wire) {
        const BATCH: usize = 64;
        loop {
            let batch = wire.drain(BATCH);
            if batch.is_empty() {
                ctx.sched_yield();
                continue;
            }
            for cmd in batch {
                match cmd {
                    Command::Set(k, v) => {
                        self.set(ctx, k, v);
                    }
                    Command::Get(k) => {
                        let _ = self.get(ctx, k);
                    }
                    Command::Del(k) => {
                        self.del(ctx, k);
                    }
                    Command::Quit => return,
                }
            }
        }
    }
}

/// The client workload of §7.1: insertions and lookups.
pub fn client_workload(wire: &Wire) {
    for (i, key) in [11u64, 22, 33, 44].into_iter().enumerate() {
        wire.send(Command::Set(key, (i as u64 + 1) * 100));
    }
    wire.send(Command::Get(11));
    wire.send(Command::Get(44));
    wire.send(Command::Quit);
}

/// The full server+client program: format, serve a client session, crash,
/// restart, serve lookups again.
pub fn program() -> Program {
    Program::new("Memcached")
        .pre_crash(|ctx: &mut Ctx| {
            let wire = Wire::new();
            let client_wire = wire.clone();
            let client = ctx.spawn(move |_c: &mut Ctx| {
                client_workload(&client_wire);
            });
            let mut server = Memcached::format(ctx);
            server.serve(ctx, &wire);
            ctx.join(client);
        })
        .post_crash(|ctx: &mut Ctx| {
            if let Some((server, _recovered)) = Memcached::restart(ctx) {
                for key in [11u64, 22, 33, 44] {
                    let _ = server.get(ctx, key);
                }
            }
        })
}

/// Races Table 4 reports for memcached (bugs #2–#5).
pub const EXPECTED_RACES: &[&str] = &[PSLAB_VALID, PSLAB_ID, ITEM_IT_FLAGS, ITEM_CAS];

#[cfg(test)]
mod tests {
    use super::*;
    use jaaru::{Engine, PersistencePolicy, SchedPolicy};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn set_get_roundtrip() {
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        let program = Program::new("t").pre_crash(move |ctx: &mut Ctx| {
            let mut server = Memcached::format(ctx);
            assert!(server.set(ctx, 11, 100));
            assert!(server.set(ctx, 22, 200));
            o.store(
                server.get(ctx, 11).unwrap_or(0) + server.get(ctx, 22).unwrap_or(0),
                Ordering::SeqCst,
            );
        });
        Engine::run_plain(&program, 2);
        assert_eq!(out.load(Ordering::SeqCst), 300);
    }

    #[test]
    fn update_reuses_slot() {
        let program = Program::new("t").pre_crash(|ctx: &mut Ctx| {
            let mut server = Memcached::format(ctx);
            server.set(ctx, 11, 1);
            server.set(ctx, 11, 2);
            assert_eq!(server.get(ctx, 11), Some(2));
        });
        Engine::run_plain(&program, 2);
    }

    #[test]
    fn del_unlinks_and_slot_is_reusable() {
        let program = Program::new("t").pre_crash(|ctx: &mut Ctx| {
            let mut server = Memcached::format(ctx);
            server.set(ctx, 11, 100);
            assert!(server.del(ctx, 11));
            assert_eq!(server.get(ctx, 11), None);
            assert!(!server.del(ctx, 11));
            server.set(ctx, 13, 300);
            assert_eq!(server.get(ctx, 13), Some(300));
        });
        Engine::run_plain(&program, 2);
    }

    #[test]
    fn restart_recovers_persisted_items() {
        let recovered = Arc::new(AtomicU64::new(99));
        let r = recovered.clone();
        let program = Program::new("t")
            .pre_crash(|ctx: &mut Ctx| {
                let mut server = Memcached::format(ctx);
                server.set(ctx, 11, 100);
                server.set(ctx, 22, 200);
                server.set(ctx, 33, 300);
            })
            .post_crash(move |ctx: &mut Ctx| {
                let (_, n) = Memcached::restart(ctx).expect("pool valid");
                r.store(n, Ordering::SeqCst);
            });
        Engine::run_single(
            &program,
            SchedPolicy::Deterministic,
            PersistencePolicy::FullCache,
            0,
            None,
            Box::new(jaaru::NullSink),
        );
        assert_eq!(recovered.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn client_server_session_works() {
        // The full driver runs without panics and the server answers gets.
        let run = Engine::run_plain(&program(), 3);
        assert!(run.panics.is_empty(), "{:?}", run.panics);
    }

    #[test]
    fn detector_finds_the_four_memcached_races() {
        use std::collections::BTreeSet;
        let report = yashme::model_check(&program());
        let found: BTreeSet<&str> = report.race_labels().into_iter().collect();
        let expected: BTreeSet<&str> = EXPECTED_RACES.iter().copied().collect();
        assert_eq!(found, expected, "{report}");
    }
}

#[cfg(test)]
mod multiclient_tests {
    use super::*;
    use crate::client::{Command, Wire};
    use jaaru::Engine;

    #[test]
    fn two_clients_share_the_server() {
        // Two client threads interleave sets and gets through one wire; the
        // server must process all commands and terminate on the single Quit.
        let program = Program::new("mc-2c").pre_crash(|ctx: &mut Ctx| {
            let wire = Wire::new();
            let w1 = wire.clone();
            let w2 = wire.clone();
            let c1 = ctx.spawn(move |c: &mut Ctx| {
                w1.send(Command::Set(11, 1));
                c.sched_yield();
                w1.send(Command::Set(33, 3));
                w1.send(Command::Get(11));
            });
            let c2 = ctx.spawn(move |c: &mut Ctx| {
                w2.send(Command::Set(22, 2));
                c.sched_yield();
                w2.send(Command::Get(22));
            });
            let mut server = Memcached::format(ctx);
            // Serve until both clients are done, then quit.
            ctx.join(c1);
            ctx.join(c2);
            wire.send(Command::Quit);
            server.serve(ctx, &wire);
            assert_eq!(server.get(ctx, 11), Some(1));
            assert_eq!(server.get(ctx, 22), Some(2));
            assert_eq!(server.get(ctx, 33), Some(3));
        });
        let run = Engine::run_plain(&program, 6);
        assert!(run.panics.is_empty(), "{:?}", run.panics);
    }
}
