//! A minimal client: a simulated thread feeding commands to a server loop.
//!
//! The paper drives Memcached and Redis with hand-written clients (§7.1).
//! Here the client is another simulated thread and the wire is a volatile
//! (host-side) queue — like a socket, it does not survive crashes and is
//! invisible to the persistency model.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A key-value command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Store `key → value`.
    Set(u64, u64),
    /// Look `key` up.
    Get(u64),
    /// Delete `key`.
    Del(u64),
    /// Shut the server loop down.
    Quit,
}

/// A volatile command queue between client and server threads.
#[derive(Debug, Clone, Default)]
pub struct Wire {
    queue: Arc<Mutex<VecDeque<Command>>>,
}

impl Wire {
    /// Creates an empty wire.
    pub fn new() -> Wire {
        Wire::default()
    }

    /// Client side: sends a command.
    pub fn send(&self, cmd: Command) {
        self.queue.lock().expect("wire lock").push_back(cmd);
    }

    /// Client side: sends a whole batch under one lock acquisition.
    ///
    /// The soak traffic generator pushes millions of commands; taking the
    /// host mutex once per batch instead of once per command keeps the
    /// harness overhead out of the measured events/s.
    pub fn send_all(&self, cmds: impl IntoIterator<Item = Command>) {
        self.queue.lock().expect("wire lock").extend(cmds);
    }

    /// Server side: takes the next command if one is pending.
    pub fn recv(&self) -> Option<Command> {
        self.queue.lock().expect("wire lock").pop_front()
    }

    /// Server side: takes up to `max` pending commands under one lock
    /// acquisition, in FIFO order. Returns an empty vector when the wire is
    /// idle.
    pub fn drain(&self, max: usize) -> Vec<Command> {
        let mut queue = self.queue.lock().expect("wire lock");
        let n = queue.len().min(max);
        queue.drain(..n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let w = Wire::new();
        w.send(Command::Set(1, 2));
        w.send(Command::Get(1));
        w.send(Command::Quit);
        assert_eq!(w.recv(), Some(Command::Set(1, 2)));
        assert_eq!(w.recv(), Some(Command::Get(1)));
        assert_eq!(w.recv(), Some(Command::Quit));
        assert_eq!(w.recv(), None);
    }

    #[test]
    fn clone_shares_the_queue() {
        let w = Wire::new();
        let w2 = w.clone();
        w.send(Command::Quit);
        assert_eq!(w2.recv(), Some(Command::Quit));
    }

    #[test]
    fn batched_send_and_drain_preserve_fifo_order() {
        let w = Wire::new();
        w.send_all([Command::Set(1, 2), Command::Get(1), Command::Quit]);
        assert_eq!(w.drain(2), vec![Command::Set(1, 2), Command::Get(1)]);
        assert_eq!(w.drain(16), vec![Command::Quit]);
        assert!(w.drain(16).is_empty());
    }
}
