//! Application-level benchmarks: Memcached-pmem and Redis-pmem.
//!
//! §7.1: "Redis is a popular in-memory database ... ported by Intel to use
//! both DRAM and persistent memory. It uses PMDK's transaction APIs ...
//! Memcached is a high-performance distributed memory caching system ported
//! to use persistent memory. This in-memory key-value store uses low-level
//! libpmem APIs to flush cache lines." As in the paper, each app is driven
//! by a client that modifies the server "using insertion and lookup
//! operations" — here a separate simulated thread sending commands through
//! a shared queue.
//!
//! Table 4 bugs #2–#5 live in memcached's pslab allocator and item
//! metadata; Redis exposes the PMDK ulog race but nothing new.

pub mod client;
pub mod memcached;
pub mod redis;
pub mod traffic;

/// Table 4 race labels for memcached-pmem.
pub mod labels {
    /// Bug #2: `valid` in `pslab_pool_t` (`pslab.c`).
    pub const PSLAB_VALID: &str = "pslab_pool.valid (pslab.c)";
    /// Bug #3: `id` in `pslab_t` (`pslab.c`).
    pub const PSLAB_ID: &str = "pslab.id (pslab.c)";
    /// Bug #4: `it_flags` in `item_chunk` (`memcached.h`).
    pub const ITEM_IT_FLAGS: &str = "item.it_flags (memcached.h)";
    /// Bug #5: `cas` in `item` (`items.c`).
    pub const ITEM_CAS: &str = "item.cas (items.c)";
}
