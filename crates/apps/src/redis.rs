//! Redis-pmem: a key-value server storing its dictionary in PM through
//! PMDK's transaction API (§7.1).
//!
//! Redis exposes the PMDK `ulog.c` race through the transaction machinery
//! but contributes no new racy fields of its own (Table 4 lists none for
//! Redis; Table 5 reports 0 races for it in a single random execution).

use jaaru::{Atomicity, Ctx, Program};
use pmdk::libpmem::pmem_persist;
use pmdk::pool::Pool;
use pmdk::tx::Tx;
use pmem::Addr;

use crate::client::{Command, Wire};

/// Hash buckets of the persistent dict.
pub const NUM_BUCKETS: u64 = 4;

// Dict entry layout: { key u64, value u64, next u64 }.
const OFF_KEY: u64 = 0;
const OFF_VALUE: u64 = 8;
const OFF_NEXT: u64 = 16;
/// Byte size of a dict entry.
pub const ENTRY_BYTES: u64 = 24;

fn bucket_of(key: u64) -> u64 {
    key.rotate_left(7).wrapping_mul(0x2545_F491_4F6C_DD1D) % NUM_BUCKETS
}

fn valid(raw: u64) -> Option<Addr> {
    if raw >= Addr::BASE.raw() && raw < Addr::BASE.raw() + (1 << 30) {
        Some(Addr(raw))
    } else {
        None
    }
}

/// The redis-pmem server state.
#[derive(Debug)]
pub struct Redis {
    pool: Pool,
    dict: Addr,
}

impl Redis {
    /// Creates the server: a PMDK pool holding the dict bucket array.
    pub fn create(ctx: &mut Ctx) -> Redis {
        let pool = Pool::create(ctx);
        let mut tx = Tx::begin(ctx, &pool);
        let dict = tx.alloc(ctx, NUM_BUCKETS * 8);
        ctx.memset(dict, 0, NUM_BUCKETS * 8, "redis dict init");
        pmem_persist(ctx, dict, NUM_BUCKETS * 8, "redis.dict persist");
        tx.commit(ctx);
        pool.set_root_obj(ctx, dict);
        Redis { pool, dict }
    }

    /// Restarts the server post-crash: pool open (checksum validation +
    /// ulog recovery) and dict re-attachment.
    pub fn restart(ctx: &mut Ctx) -> Option<Redis> {
        let pool = Pool::open(ctx)?;
        let dict = pool.root_obj(ctx)?;
        Some(Redis { pool, dict })
    }

    /// `SET key value` via a PMDK transaction.
    pub fn set(&self, ctx: &mut Ctx, key: u64, value: u64) -> bool {
        let slot = self.dict + bucket_of(key) * 8;
        let head = ctx.load_u64(slot, Atomicity::Plain);
        let mut tx = Tx::begin(ctx, &self.pool);
        let entry = tx.alloc(ctx, ENTRY_BYTES);
        ctx.store_u64(
            entry + OFF_KEY,
            key,
            Atomicity::Plain,
            "redis.dictEntry.key",
        );
        ctx.store_u64(
            entry + OFF_VALUE,
            value,
            Atomicity::Plain,
            "redis.dictEntry.value",
        );
        ctx.store_u64(
            entry + OFF_NEXT,
            head,
            Atomicity::Plain,
            "redis.dictEntry.next",
        );
        pmem_persist(ctx, entry, ENTRY_BYTES, "redis.dictEntry persist");
        tx.add_range(ctx, slot, 8);
        ctx.store_u64(slot, entry.raw(), Atomicity::Plain, "redis.dict.bucket");
        tx.commit(ctx);
        true
    }

    /// `DEL key`: unlinks the newest matching entry transactionally.
    pub fn del(&self, ctx: &mut Ctx, key: u64) -> bool {
        let slot = self.dict + bucket_of(key) * 8;
        let mut link = slot;
        let mut cur = ctx.load_u64(slot, Atomicity::Plain);
        for _ in 0..16 {
            let entry = match valid(cur) {
                Some(e) => e,
                None => return false,
            };
            if ctx.load_u64(entry + OFF_KEY, Atomicity::Plain) == key {
                let next = ctx.load_u64(entry + OFF_NEXT, Atomicity::Plain);
                let mut tx = Tx::begin(ctx, &self.pool);
                tx.add_range(ctx, link, 8);
                ctx.store_u64(link, next, Atomicity::Plain, "redis.dict.bucket");
                tx.commit(ctx);
                return true;
            }
            link = entry + OFF_NEXT;
            cur = ctx.load_u64(entry + OFF_NEXT, Atomicity::Plain);
        }
        false
    }

    /// `GET key` (newest entry wins).
    pub fn get(&self, ctx: &mut Ctx, key: u64) -> Option<u64> {
        let slot = self.dict + bucket_of(key) * 8;
        let mut cur = ctx.load_u64(slot, Atomicity::Plain);
        for _ in 0..16 {
            let entry = valid(cur)?;
            if ctx.load_u64(entry + OFF_KEY, Atomicity::Plain) == key {
                return Some(ctx.load_u64(entry + OFF_VALUE, Atomicity::Plain));
            }
            cur = ctx.load_u64(entry + OFF_NEXT, Atomicity::Plain);
        }
        None
    }

    /// Runs the server loop, draining `wire` in batches until `Quit`.
    ///
    /// Same discipline as [`crate::memcached::Memcached::serve`]: one host
    /// mutex acquisition per [`Wire::drain`] batch, identical simulated
    /// operation order, scheduler consulted only when the wire is idle.
    pub fn serve(&mut self, ctx: &mut Ctx, wire: &Wire) {
        const BATCH: usize = 64;
        loop {
            let batch = wire.drain(BATCH);
            if batch.is_empty() {
                ctx.sched_yield();
                continue;
            }
            for cmd in batch {
                match cmd {
                    Command::Set(k, v) => {
                        self.set(ctx, k, v);
                    }
                    Command::Get(k) => {
                        let _ = self.get(ctx, k);
                    }
                    Command::Del(k) => {
                        self.del(ctx, k);
                    }
                    Command::Quit => return,
                }
            }
        }
    }
}

/// The client workload of §7.1: insertions and lookups.
pub fn client_workload(wire: &Wire) {
    for (i, key) in [7u64, 21, 42].into_iter().enumerate() {
        wire.send(Command::Set(key, (i as u64 + 1) * 50));
    }
    wire.send(Command::Get(7));
    wire.send(Command::Get(42));
    wire.send(Command::Quit);
}

/// The full server+client program.
pub fn program() -> Program {
    Program::new("Redis")
        .pre_crash(|ctx: &mut Ctx| {
            let wire = Wire::new();
            let client_wire = wire.clone();
            let client = ctx.spawn(move |_c: &mut Ctx| {
                client_workload(&client_wire);
            });
            let mut server = Redis::create(ctx);
            server.serve(ctx, &wire);
            ctx.join(client);
        })
        .post_crash(|ctx: &mut Ctx| {
            if let Some(server) = Redis::restart(ctx) {
                for key in [7u64, 21, 42] {
                    let _ = server.get(ctx, key);
                }
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaaru::{Engine, PersistencePolicy, SchedPolicy};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn set_get_roundtrip() {
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        let program = Program::new("t").pre_crash(move |ctx: &mut Ctx| {
            let server = Redis::create(ctx);
            server.set(ctx, 7, 50);
            server.set(ctx, 21, 100);
            o.store(
                server.get(ctx, 7).unwrap_or(0) + server.get(ctx, 21).unwrap_or(0),
                Ordering::SeqCst,
            );
        });
        Engine::run_plain(&program, 2);
        assert_eq!(out.load(Ordering::SeqCst), 150);
    }

    #[test]
    fn committed_sets_survive_floor_only_crash() {
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        let program = Program::new("t")
            .pre_crash(|ctx: &mut Ctx| {
                let server = Redis::create(ctx);
                server.set(ctx, 7, 50);
                server.set(ctx, 42, 150);
            })
            .post_crash(move |ctx: &mut Ctx| {
                let server = Redis::restart(ctx).expect("pool opens");
                o.store(
                    server.get(ctx, 7).unwrap_or(0) + server.get(ctx, 42).unwrap_or(0),
                    Ordering::SeqCst,
                );
            });
        Engine::run_single(
            &program,
            SchedPolicy::Deterministic,
            PersistencePolicy::FloorOnly,
            0,
            None,
            Box::new(jaaru::NullSink),
        );
        assert_eq!(out.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn del_removes_the_key() {
        let program = Program::new("t").pre_crash(|ctx: &mut Ctx| {
            let server = Redis::create(ctx);
            server.set(ctx, 7, 50);
            assert!(server.del(ctx, 7));
            assert_eq!(server.get(ctx, 7), None);
            assert!(!server.del(ctx, 7));
        });
        Engine::run_plain(&program, 2);
    }

    #[test]
    fn client_server_session_works() {
        let run = Engine::run_plain(&program(), 4);
        assert!(run.panics.is_empty(), "{:?}", run.panics);
    }

    #[test]
    fn model_check_reports_only_the_pmdk_ulog_race() {
        let report = yashme::model_check(&program());
        assert_eq!(
            report.race_labels(),
            vec![pmdk::ULOG_RACE_LABEL],
            "{report}"
        );
    }
}
