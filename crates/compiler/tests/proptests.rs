//! Property-based tests for the lowering model: lowered chunks must always
//! reconstruct the source-level effect exactly.

use compiler_model::{Arch, CompilerConfig, CompilerId, OptLevel};
use pmem::Addr;
use proptest::prelude::*;
use px86::Atomicity;

fn arb_config() -> impl Strategy<Value = CompilerConfig> {
    (
        prop_oneof![Just(CompilerId::Gcc), Just(CompilerId::Clang)],
        prop_oneof![Just(Arch::X86_64), Just(Arch::Arm64)],
        prop_oneof![
            Just(OptLevel::O0),
            Just(OptLevel::O1),
            Just(OptLevel::O2),
            Just(OptLevel::O3)
        ],
        any::<bool>(),
    )
        .prop_map(|(c, a, o, invent)| {
            let cfg = CompilerConfig::new(c, a, o);
            if invent {
                cfg.with_invented_stores()
            } else {
                cfg
            }
        })
}

fn arb_atomicity() -> impl Strategy<Value = Atomicity> {
    prop_oneof![
        Just(Atomicity::Plain),
        Just(Atomicity::Relaxed),
        Just(Atomicity::ReleaseAcquire)
    ]
}

/// Applies chunks to a byte map and returns the reconstructed range.
fn replay(chunks: &[compiler_model::StoreChunk], base: Addr, len: usize) -> Vec<Option<u8>> {
    let mut mem = vec![None; len];
    for c in chunks {
        for (i, &b) in c.bytes.iter().enumerate() {
            let at = c.addr.raw() + i as u64;
            assert!(
                at >= base.raw() && at < base.raw() + len as u64,
                "chunk outside range"
            );
            mem[(at - base.raw()) as usize] = Some(b);
        }
    }
    mem
}

proptest! {
    #[test]
    fn lowered_store_reconstructs_the_value(
        cfg in arb_config(),
        atomicity in arb_atomicity(),
        bytes in proptest::collection::vec(any::<u8>(), 1..40),
        addr in 0x1000u64..0x2000,
    ) {
        let chunks = cfg.lower_store(Addr(addr), &bytes, atomicity);
        // Non-invented chunks, applied in order, must equal the source bytes.
        let real: Vec<_> = chunks.iter().filter(|c| !c.invented).cloned().collect();
        let mem = replay(&real, Addr(addr), bytes.len());
        for (i, &b) in bytes.iter().enumerate() {
            prop_assert_eq!(mem[i], Some(b), "byte {} wrong", i);
        }
        // And applying ALL chunks in order also ends at the source bytes
        // (invented stashes are overwritten).
        let mem = replay(&chunks, Addr(addr), bytes.len());
        for (i, &b) in bytes.iter().enumerate() {
            prop_assert_eq!(mem[i], Some(b));
        }
    }

    #[test]
    fn atomic_stores_are_never_split_or_invented(
        cfg in arb_config(),
        bytes in proptest::collection::vec(any::<u8>(), 1..9),
        addr in 0x1000u64..0x2000,
    ) {
        for atom in [Atomicity::Relaxed, Atomicity::ReleaseAcquire] {
            let chunks = cfg.lower_store(Addr(addr), &bytes, atom);
            prop_assert_eq!(chunks.len(), 1);
            prop_assert!(!chunks[0].invented);
            prop_assert_eq!(&chunks[0].bytes, &bytes);
        }
    }

    #[test]
    fn chunks_never_overlap_except_invented(
        cfg in arb_config(),
        bytes in proptest::collection::vec(any::<u8>(), 1..40),
        addr in 0x1000u64..0x2000,
    ) {
        let chunks = cfg.lower_store(Addr(addr), &bytes, Atomicity::Plain);
        let real: Vec<_> = chunks.iter().filter(|c| !c.invented).collect();
        let mut covered = vec![false; bytes.len()];
        for c in &real {
            for i in 0..c.bytes.len() {
                let off = (c.addr.raw() + i as u64 - addr) as usize;
                prop_assert!(!covered[off], "real chunks overlap at offset {}", off);
                covered[off] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c), "every byte covered");
    }

    #[test]
    fn memset_covers_exactly_the_range(
        cfg in arb_config(),
        value in any::<u8>(),
        len in 1u64..100,
        addr in 0x1000u64..0x2000,
    ) {
        let chunks = cfg.lower_memset(Addr(addr), value, len);
        let mem = replay(&chunks, Addr(addr), len as usize);
        prop_assert!(mem.iter().all(|&b| b == Some(value)));
        let total: u64 = chunks.iter().map(|c| c.bytes.len() as u64).sum();
        prop_assert_eq!(total, len, "no byte written twice");
    }

    #[test]
    fn memcpy_preserves_data_in_order(
        cfg in arb_config(),
        data in proptest::collection::vec(any::<u8>(), 1..100),
        addr in 0x1000u64..0x2000,
    ) {
        let chunks = cfg.lower_memcpy(Addr(addr), &data);
        // Chunks must be in ascending address order (libc copies forward).
        for w in chunks.windows(2) {
            prop_assert!(w[0].addr < w[1].addr);
        }
        let mem = replay(&chunks, Addr(addr), data.len());
        for (i, &b) in data.iter().enumerate() {
            prop_assert_eq!(mem[i], Some(b));
        }
    }

    #[test]
    fn no_chunk_exceeds_word_size_for_multiword_stores(
        cfg in arb_config(),
        bytes in proptest::collection::vec(any::<u8>(), 9..64),
        addr in 0x1000u64..0x2000,
    ) {
        let chunks = cfg.lower_store(Addr(addr), &bytes, Atomicity::Plain);
        for c in chunks.iter().filter(|c| !c.invented) {
            prop_assert!(c.bytes.len() <= 8, "chunk wider than a word");
        }
    }
}
