//! A model of the compiler store optimizations that cause persistency races.
//!
//! Persistency races exist because language standards let compilers assume a
//! non-atomic store is unobserved until the next synchronization operation,
//! which licenses **store tearing** (one source store → several store
//! instructions), **mem-op introduction** (runs of stores → `memset` /
//! `memcpy` / `memmove` calls, which give no 64-bit atomicity guarantee), and
//! **store inventing** (temporarily stashing intermediate values in the
//! destination). §3.2 of the paper studies gcc 10.3 and clang 11.0 and finds
//! these optimizations on both x86-64 and ARM64 (Table 2a), and counts the
//! mem-ops that appear in the benchmarks' assembly versus their source
//! (Table 2b).
//!
//! This crate substitutes for those real compilers:
//!
//! * [`CompilerConfig::lower_store`] performs the *runtime* lowering used by
//!   the execution engine — splitting plain stores into the instruction-level
//!   chunks the configured compiler/architecture could emit, so torn values
//!   are observable post-crash (the Figure 1 demo);
//! * [`compile_unit`] performs the *static* coalescing pass over a
//!   benchmark's source profile, regenerating the Table 2b counts;
//! * [`observed_optimizations`] records the Table 2a rule matrix.
//!
//! # Examples
//!
//! ```
//! use compiler_model::{Arch, CompilerConfig, CompilerId, OptLevel};
//! use pmem::Addr;
//! use px86::Atomicity;
//!
//! // gcc -O1 on ARM64 tears an aligned 64-bit store into two 32-bit stores.
//! let cfg = CompilerConfig::new(CompilerId::Gcc, Arch::Arm64, OptLevel::O1);
//! let chunks = cfg.lower_store(Addr(0x1000), &0x1234_5678_1234_5678u64.to_le_bytes(),
//!                              Atomicity::Plain);
//! assert_eq!(chunks.len(), 2);
//!
//! // An atomic store is never torn.
//! let chunks = cfg.lower_store(Addr(0x1000), &1u64.to_le_bytes(),
//!                              Atomicity::ReleaseAcquire);
//! assert_eq!(chunks.len(), 1);
//! ```

mod config;
mod lower;
mod profile;
mod rules;

pub use config::{Arch, CompilerConfig, CompilerId, OptLevel};
pub use lower::StoreChunk;
pub use profile::{
    compile_unit, MemOpCounts, SourceProfile, SourceUnit, MEMCPY_THRESHOLD_WORDS,
    MEMSET_THRESHOLD_WORDS,
};
pub use rules::{observed_optimizations, render_table2a, StoreOptimization};
