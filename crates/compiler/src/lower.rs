//! Runtime lowering of source-level stores into instruction-level chunks.

use pmem::Addr;
use px86::Atomicity;
use serde::{Deserialize, Serialize};

use crate::config::CompilerConfig;

/// One instruction-level store produced by lowering a source-level store.
///
/// A source-level store lowers to one chunk in the common case; a torn store
/// lowers to several, and store inventing may prepend a chunk carrying a
/// stashed temporary value. Each chunk becomes a separate store event in the
/// simulation, so a crash can persist some chunks and not others — exactly
/// the partial-persistence behaviour persistency races are about.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreChunk {
    /// First byte written by this chunk.
    pub addr: Addr,
    /// The bytes written.
    pub bytes: Vec<u8>,
    /// `true` if this chunk is a compiler-invented temporary stash rather
    /// than (part of) the source-level value.
    pub invented: bool,
}

impl StoreChunk {
    /// Length of the chunk in bytes.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Whether the chunk writes no bytes (never produced by lowering).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl CompilerConfig {
    /// Lowers a source-level store of `bytes` at `addr` into instruction
    /// chunks.
    ///
    /// * Atomic stores ([`Atomicity::Relaxed`] or
    ///   [`Atomicity::ReleaseAcquire`]) are never split and never get
    ///   invented companions.
    /// * Plain stores wider than 8 bytes always split into word-size chunks
    ///   (no ISA has a general single store that wide).
    /// * Plain 8-byte stores split into two 4-byte stores when
    ///   [`tear_wide_stores`](CompilerConfig::tear_wide_stores) is set — the
    ///   gcc/ARM64 behaviour of Figure 1.
    /// * With [`invent_stores`](CompilerConfig::invent_stores), a plain
    ///   store is preceded by a chunk stashing a scrambled temporary.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty.
    pub fn lower_store(&self, addr: Addr, bytes: &[u8], atomicity: Atomicity) -> Vec<StoreChunk> {
        assert!(!bytes.is_empty(), "zero-length store");
        if !atomicity.is_tearable() {
            return vec![StoreChunk {
                addr,
                bytes: bytes.to_vec(),
                invented: false,
            }];
        }
        let mut chunks = Vec::new();
        if self.invent_stores {
            // Model register-pressure stashing: the destination briefly
            // holds a derived temporary (here, the bitwise complement).
            chunks.push(StoreChunk {
                addr,
                bytes: bytes.iter().map(|b| !b).collect(),
                invented: true,
            });
        }
        let piece = if bytes.len() > 8 {
            8
        } else if bytes.len() == 8 && self.tear_wide_stores {
            4
        } else {
            bytes.len()
        };
        let mut off = 0usize;
        while off < bytes.len() {
            let end = (off + piece).min(bytes.len());
            chunks.push(StoreChunk {
                addr: addr + off as u64,
                bytes: bytes[off..end].to_vec(),
                invented: false,
            });
            off = end;
        }
        chunks
    }

    /// Lowers a `memset(addr, value, len)` into instruction chunks.
    ///
    /// libc `memset` implementations write in word-size (or wider) pieces
    /// with no cross-word atomicity guarantee; we model 8-byte chunks plus a
    /// tail. The result is always non-atomic.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn lower_memset(&self, addr: Addr, value: u8, len: u64) -> Vec<StoreChunk> {
        assert!(len > 0, "zero-length memset");
        let mut chunks = Vec::new();
        let mut off = 0u64;
        while off < len {
            let n = (len - off).min(8);
            chunks.push(StoreChunk {
                addr: addr + off,
                bytes: vec![value; n as usize],
                invented: false,
            });
            off += n;
        }
        chunks
    }

    /// Lowers a `memcpy`/`memmove` of `data` to `addr` into chunks, like
    /// [`lower_memset`](CompilerConfig::lower_memset).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn lower_memcpy(&self, addr: Addr, data: &[u8]) -> Vec<StoreChunk> {
        assert!(!data.is_empty(), "zero-length memcpy");
        let mut chunks = Vec::new();
        let mut off = 0usize;
        while off < data.len() {
            let end = (off + 8).min(data.len());
            chunks.push(StoreChunk {
                addr: addr + off as u64,
                bytes: data[off..end].to_vec(),
                invented: false,
            });
            off = end;
        }
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Arch, CompilerId, OptLevel};

    fn tearing() -> CompilerConfig {
        CompilerConfig::gcc_o1_arm64()
    }

    fn non_tearing() -> CompilerConfig {
        CompilerConfig::clang_o3_x86()
    }

    #[test]
    fn plain_u64_torn_into_two_halves() {
        let v = 0x1234_5678_1234_5678u64.to_le_bytes();
        let chunks = tearing().lower_store(Addr(0x100), &v, Atomicity::Plain);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].addr, Addr(0x100));
        assert_eq!(chunks[0].bytes, v[..4]);
        assert_eq!(chunks[1].addr, Addr(0x104));
        assert_eq!(chunks[1].bytes, v[4..]);
        assert!(chunks.iter().all(|c| !c.invented));
    }

    #[test]
    fn atomic_u64_never_torn() {
        let v = 7u64.to_le_bytes();
        for atom in [Atomicity::Relaxed, Atomicity::ReleaseAcquire] {
            let chunks = tearing()
                .with_invented_stores()
                .lower_store(Addr(0), &v, atom);
            assert_eq!(chunks.len(), 1);
            assert!(!chunks[0].invented);
        }
    }

    #[test]
    fn non_tearing_config_keeps_u64_whole() {
        let v = 7u64.to_le_bytes();
        let chunks = non_tearing().lower_store(Addr(0), &v, Atomicity::Plain);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len(), 8);
    }

    #[test]
    fn wide_stores_always_split() {
        let data = [0xabu8; 24];
        let chunks = non_tearing().lower_store(Addr(0), &data, Atomicity::Plain);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.len() == 8));
    }

    #[test]
    fn invented_store_precedes_real_value() {
        let cfg = non_tearing().with_invented_stores();
        let v = 0x00ff_00ffu32.to_le_bytes();
        let chunks = cfg.lower_store(Addr(0), &v, Atomicity::Plain);
        assert_eq!(chunks.len(), 2);
        assert!(chunks[0].invented);
        assert_eq!(chunks[0].bytes, vec![!v[0], !v[1], !v[2], !v[3]]);
        assert!(!chunks[1].invented);
        assert_eq!(chunks[1].bytes, v.to_vec());
    }

    #[test]
    fn memset_chunks_cover_range_exactly() {
        let chunks = non_tearing().lower_memset(Addr(3), 0, 21);
        let total: u64 = chunks.iter().map(StoreChunk::len).sum();
        assert_eq!(total, 21);
        assert_eq!(chunks[0].addr, Addr(3));
        assert_eq!(chunks.last().unwrap().len(), 5);
        assert!(chunks.iter().all(|c| c.bytes.iter().all(|&b| b == 0)));
    }

    #[test]
    fn memcpy_preserves_data() {
        let data: Vec<u8> = (0..19).collect();
        let chunks = non_tearing().lower_memcpy(Addr(0x40), &data);
        let mut rebuilt = Vec::new();
        for c in &chunks {
            assert_eq!(c.addr, Addr(0x40 + rebuilt.len() as u64));
            rebuilt.extend_from_slice(&c.bytes);
        }
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn small_plain_stores_stay_whole() {
        for len in [1usize, 2, 4] {
            let data = vec![0x5au8; len];
            let chunks = tearing().lower_store(Addr(0), &data, Atomicity::Plain);
            assert_eq!(chunks.len(), 1, "len {len}");
        }
    }

    #[test]
    fn o0_gcc_arm64_does_not_tear() {
        let cfg = CompilerConfig::new(CompilerId::Gcc, Arch::Arm64, OptLevel::O0);
        let chunks = cfg.lower_store(Addr(0), &1u64.to_le_bytes(), Atomicity::Plain);
        assert_eq!(chunks.len(), 1);
    }
}
