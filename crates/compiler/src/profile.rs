//! Static source profiles and the Table 2b counting pass.
//!
//! The paper's Table 2b compares the number of `memset`/`memcpy`/`memmove`
//! operations in each benchmark's *source code* with the number in the
//! *assembly* clang -O3 generates. Each benchmark port in this repository
//! declares a [`SourceProfile`] describing its store-heavy code regions
//! (constructors, node initializers, entry-shifting loops); [`compile_unit`]
//! applies the modelled optimizer to each region and the counts are summed
//! to regenerate the table.

use serde::{Deserialize, Serialize};

use crate::config::{CompilerConfig, CompilerId};

/// A source-level construct relevant to mem-op counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceUnit {
    /// An explicit `memset` call in the source, covering `words` 8-byte
    /// words.
    ExplicitMemset {
        /// Words covered.
        words: u64,
    },
    /// An explicit `memcpy` call in the source.
    ExplicitMemcpy {
        /// Words covered.
        words: u64,
    },
    /// An explicit `memmove` call in the source.
    ExplicitMemmove {
        /// Words covered.
        words: u64,
    },
    /// A run of `words` adjacent plain stores of zero (e.g. zero-initializing
    /// the fields of a node). Candidates for memset introduction.
    ZeroStoreRun {
        /// Length of the run in words.
        words: u64,
    },
    /// A run of `words` adjacent plain assignments (e.g. copying a key range
    /// while splitting a node). Candidates for memcpy/memmove introduction.
    AssignRun {
        /// Length of the run in words.
        words: u64,
    },
    /// Atomic or `volatile` stores: never coalesced into mem-ops. P-CLHT's
    /// critical stores are declared volatile, which is why its row in
    /// Table 2b is 0/0 (§3.2).
    AtomicStores {
        /// Number of stores.
        count: u64,
    },
    /// Stores to non-adjacent locations: not coalescible.
    ScatteredStores {
        /// Number of stores.
        count: u64,
    },
}

/// Counts of mem-operations, per kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemOpCounts {
    /// Number of `memset` operations.
    pub memset: u64,
    /// Number of `memcpy` operations.
    pub memcpy: u64,
    /// Number of `memmove` operations.
    pub memmove: u64,
}

impl MemOpCounts {
    /// Total mem-operations of all kinds.
    pub fn total(&self) -> u64 {
        self.memset + self.memcpy + self.memmove
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: MemOpCounts) {
        self.memset += other.memset;
        self.memcpy += other.memcpy;
        self.memmove += other.memmove;
    }
}

/// The mem-op-relevant source description of one benchmark.
///
/// `regions` groups [`SourceUnit`]s into straight-line code regions (a
/// constructor body, a split loop, ...); coalescing never crosses region
/// boundaries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceProfile {
    /// Benchmark name as printed in Table 2b.
    pub name: String,
    /// Straight-line code regions.
    pub regions: Vec<Vec<SourceUnit>>,
}

impl SourceProfile {
    /// Creates a profile.
    pub fn new(name: impl Into<String>, regions: Vec<Vec<SourceUnit>>) -> Self {
        SourceProfile {
            name: name.into(),
            regions,
        }
    }

    /// Mem-ops appearing in the source (`#src-op` column of Table 2b).
    pub fn source_counts(&self) -> MemOpCounts {
        let mut counts = MemOpCounts::default();
        for region in &self.regions {
            for unit in region {
                match unit {
                    SourceUnit::ExplicitMemset { .. } => counts.memset += 1,
                    SourceUnit::ExplicitMemcpy { .. } => counts.memcpy += 1,
                    SourceUnit::ExplicitMemmove { .. } => counts.memmove += 1,
                    _ => {}
                }
            }
        }
        counts
    }

    /// Mem-ops appearing in the generated assembly (`#asm-op` column).
    pub fn asm_counts(&self, cfg: &CompilerConfig) -> MemOpCounts {
        let mut counts = MemOpCounts::default();
        for region in &self.regions {
            counts.add(compile_unit(region, cfg));
        }
        counts
    }
}

/// Minimum zero-run length (in words) the optimizer turns into a `memset`.
pub const MEMSET_THRESHOLD_WORDS: u64 = 3;

/// Minimum assignment-run length (in words) turned into `memcpy`/`memmove`.
pub const MEMCPY_THRESHOLD_WORDS: u64 = 2;

/// Applies the modelled optimizer to one straight-line region and counts the
/// mem-ops in the result.
///
/// Rules (all gated on
/// [`introduce_mem_ops`](crate::CompilerConfig::introduce_mem_ops); with it
/// off, explicit calls pass through unchanged and nothing is introduced):
///
/// * maximal runs of *adjacent explicit `memset`s* merge into one `memset`
///   (how P-ART's 14 constructor memsets become 3, §3.2);
/// * a [`SourceUnit::ZeroStoreRun`] of at least
///   [`MEMSET_THRESHOLD_WORDS`] becomes a `memset`;
/// * a [`SourceUnit::AssignRun`] of at least [`MEMCPY_THRESHOLD_WORDS`]
///   becomes a `memcpy` (clang) or `memmove` (gcc, Table 2a);
/// * atomic/volatile and scattered stores are never converted.
pub fn compile_unit(region: &[SourceUnit], cfg: &CompilerConfig) -> MemOpCounts {
    let mut counts = MemOpCounts::default();
    if !cfg.introduce_mem_ops {
        for unit in region {
            match unit {
                SourceUnit::ExplicitMemset { .. } => counts.memset += 1,
                SourceUnit::ExplicitMemcpy { .. } => counts.memcpy += 1,
                SourceUnit::ExplicitMemmove { .. } => counts.memmove += 1,
                _ => {}
            }
        }
        return counts;
    }
    let mut in_memset_run = false;
    for unit in region {
        let continues_memset_run = matches!(unit, SourceUnit::ExplicitMemset { .. });
        match unit {
            SourceUnit::ExplicitMemset { .. } => {
                if !in_memset_run {
                    counts.memset += 1; // first of a merged run
                }
            }
            SourceUnit::ExplicitMemcpy { .. } => counts.memcpy += 1,
            SourceUnit::ExplicitMemmove { .. } => counts.memmove += 1,
            SourceUnit::ZeroStoreRun { words } => {
                if *words >= MEMSET_THRESHOLD_WORDS {
                    counts.memset += 1;
                }
            }
            SourceUnit::AssignRun { words } => {
                if *words >= MEMCPY_THRESHOLD_WORDS {
                    match cfg.compiler {
                        CompilerId::Clang => counts.memcpy += 1,
                        CompilerId::Gcc => counts.memmove += 1,
                    }
                }
            }
            SourceUnit::AtomicStores { .. } | SourceUnit::ScatteredStores { .. } => {}
        }
        in_memset_run = continues_memset_run;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Arch, OptLevel};
    use SourceUnit::*;

    fn clang() -> CompilerConfig {
        CompilerConfig::clang_o3_x86()
    }

    #[test]
    fn zero_runs_become_memset_above_threshold() {
        let region = vec![ZeroStoreRun { words: 8 }, ZeroStoreRun { words: 2 }];
        let c = compile_unit(&region, &clang());
        assert_eq!(c.memset, 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn assign_runs_become_memcpy_on_clang_memmove_on_gcc() {
        let region = vec![AssignRun { words: 4 }];
        let c = compile_unit(&region, &clang());
        assert_eq!((c.memcpy, c.memmove), (1, 0));
        let gcc = CompilerConfig::new(CompilerId::Gcc, Arch::X86_64, OptLevel::O3);
        let c = compile_unit(&region, &gcc);
        assert_eq!((c.memcpy, c.memmove), (0, 1));
    }

    #[test]
    fn adjacent_explicit_memsets_merge() {
        let region = vec![
            ExplicitMemset { words: 2 },
            ExplicitMemset { words: 2 },
            ExplicitMemset { words: 2 },
        ];
        assert_eq!(compile_unit(&region, &clang()).memset, 1);
        // Separated by another unit: no merge.
        let region = vec![
            ExplicitMemset { words: 2 },
            ScatteredStores { count: 1 },
            ExplicitMemset { words: 2 },
        ];
        assert_eq!(compile_unit(&region, &clang()).memset, 2);
    }

    #[test]
    fn atomic_and_scattered_stores_never_convert() {
        let region = vec![AtomicStores { count: 50 }, ScatteredStores { count: 50 }];
        assert_eq!(compile_unit(&region, &clang()).total(), 0);
    }

    #[test]
    fn o0_passes_explicit_ops_through() {
        let cfg = CompilerConfig::new(CompilerId::Clang, Arch::X86_64, OptLevel::O0);
        let region = vec![
            ExplicitMemset { words: 2 },
            ExplicitMemset { words: 2 },
            ZeroStoreRun { words: 100 },
        ];
        let c = compile_unit(&region, &cfg);
        assert_eq!(c.memset, 2); // no merging, no introduction
    }

    #[test]
    fn profile_sums_regions() {
        let p = SourceProfile::new(
            "toy",
            vec![
                vec![ExplicitMemset { words: 4 }, ZeroStoreRun { words: 4 }],
                vec![AssignRun { words: 4 }],
            ],
        );
        assert_eq!(p.source_counts().total(), 1);
        let asm = p.asm_counts(&clang());
        assert_eq!(asm.memset, 2);
        assert_eq!(asm.memcpy, 1);
        assert_eq!(asm.total(), 3);
    }

    #[test]
    fn p_clht_shape_volatile_stores_yield_zero() {
        // The P-CLHT row of Table 2b: lock-free design with volatile
        // critical stores → 0 source ops, 0 assembly ops.
        let p = SourceProfile::new("P-CLHT", vec![vec![AtomicStores { count: 40 }]]);
        assert_eq!(p.source_counts().total(), 0);
        assert_eq!(p.asm_counts(&clang()).total(), 0);
    }
}
