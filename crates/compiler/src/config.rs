//! Compiler, architecture, and optimization-level configuration.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Target architecture of the modelled compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// x86-64.
    X86_64,
    /// ARM64 / AArch64.
    Arm64,
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Arch::X86_64 => "x86-64",
            Arch::Arm64 => "ARM64",
        })
    }
}

/// The modelled compiler family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompilerId {
    /// GNU gcc (the paper studied version 10.3).
    Gcc,
    /// LLVM clang (the paper studied version 11.0).
    Clang,
}

impl fmt::Display for CompilerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompilerId::Gcc => "gcc",
            CompilerId::Clang => "LLVM-clang",
        })
    }
}

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// `-O0`: no store optimizations.
    O0,
    /// `-O1`.
    O1,
    /// `-O2`.
    O2,
    /// `-O3` (used for the paper's Table 2b study).
    O3,
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
        })
    }
}

/// A complete compiler configuration used for lowering.
///
/// The flags mirror the optimization classes of §3: store tearing, mem-op
/// introduction (memset/memcpy/memmove), and store inventing. They are
/// derived from `(compiler, arch, opt)` by default but can be overridden for
/// directed experiments (e.g. forcing store inventing on to demonstrate
/// stash-value persistence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompilerConfig {
    /// The compiler family being modelled.
    pub compiler: CompilerId,
    /// The target architecture.
    pub arch: Arch,
    /// The optimization level.
    pub opt: OptLevel,
    /// Whether plain word-size stores may be torn into narrower stores.
    pub tear_wide_stores: bool,
    /// Whether runs of zero stores become `memset` and assignment runs
    /// become `memcpy`/`memmove` (affecting the static pass and the chunk
    /// granularity of `memset`/`memcpy` lowering).
    pub introduce_mem_ops: bool,
    /// Whether the compiler may invent stores (stash temporaries in the
    /// destination). Off by default: inventing is rarer, and the paper uses
    /// it to argue byte-size fields are also unsafe.
    pub invent_stores: bool,
}

impl CompilerConfig {
    /// Derives a configuration from compiler, architecture, and opt level.
    pub fn new(compiler: CompilerId, arch: Arch, opt: OptLevel) -> Self {
        let optimizing = opt > OptLevel::O0;
        CompilerConfig {
            compiler,
            arch,
            opt,
            // gcc on ARM64 tears aligned 64-bit stores at O1+ (Figure 1);
            // other pairs are modelled as not tearing word-size stores
            // today, though the language permits it.
            tear_wide_stores: optimizing && compiler == CompilerId::Gcc && arch == Arch::Arm64,
            introduce_mem_ops: optimizing,
            invent_stores: false,
        }
    }

    /// The configuration used in the paper's Table 2b study:
    /// `clang -O3` for x86-64.
    pub fn clang_o3_x86() -> Self {
        CompilerConfig::new(CompilerId::Clang, Arch::X86_64, OptLevel::O3)
    }

    /// The configuration of the paper's Figure 1: `gcc -O1` for ARM64,
    /// which tears the 64-bit store.
    pub fn gcc_o1_arm64() -> Self {
        CompilerConfig::new(CompilerId::Gcc, Arch::Arm64, OptLevel::O1)
    }

    /// Returns a copy with store inventing enabled.
    pub fn with_invented_stores(mut self) -> Self {
        self.invent_stores = true;
        self
    }

    /// Returns a copy with wide-store tearing enabled regardless of target.
    ///
    /// Useful for demonstrating that a race flagged by Yashme on one
    /// compiler/architecture corrupts data when the code moves to another —
    /// the "library or compiler update may expose a latent persistency race"
    /// scenario of §3.2.
    pub fn with_store_tearing(mut self) -> Self {
        self.tear_wide_stores = true;
        self
    }
}

impl Default for CompilerConfig {
    /// The default configuration matches the paper's study setup
    /// ([`CompilerConfig::clang_o3_x86`]).
    fn default() -> Self {
        CompilerConfig::clang_o3_x86()
    }
}

impl fmt::Display for CompilerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.compiler, self.opt, self.arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcc_arm64_tears_at_o1_plus() {
        assert!(CompilerConfig::new(CompilerId::Gcc, Arch::Arm64, OptLevel::O1).tear_wide_stores);
        assert!(CompilerConfig::new(CompilerId::Gcc, Arch::Arm64, OptLevel::O3).tear_wide_stores);
        assert!(!CompilerConfig::new(CompilerId::Gcc, Arch::Arm64, OptLevel::O0).tear_wide_stores);
        assert!(!CompilerConfig::new(CompilerId::Gcc, Arch::X86_64, OptLevel::O3).tear_wide_stores);
        assert!(
            !CompilerConfig::new(CompilerId::Clang, Arch::Arm64, OptLevel::O3).tear_wide_stores
        );
    }

    #[test]
    fn o0_disables_mem_op_introduction() {
        assert!(
            !CompilerConfig::new(CompilerId::Clang, Arch::X86_64, OptLevel::O0).introduce_mem_ops
        );
        assert!(CompilerConfig::clang_o3_x86().introduce_mem_ops);
    }

    #[test]
    fn overrides() {
        let cfg = CompilerConfig::clang_o3_x86()
            .with_invented_stores()
            .with_store_tearing();
        assert!(cfg.invent_stores);
        assert!(cfg.tear_wide_stores);
    }

    #[test]
    fn display() {
        assert_eq!(
            CompilerConfig::clang_o3_x86().to_string(),
            "LLVM-clang -O3 x86-64"
        );
        assert_eq!(CompilerConfig::gcc_o1_arm64().to_string(), "gcc -O1 ARM64");
    }

    #[test]
    fn opt_levels_ordered() {
        assert!(OptLevel::O0 < OptLevel::O1);
        assert!(OptLevel::O2 < OptLevel::O3);
    }
}
