//! Table 2a: store optimizations observed in popular compilers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::config::{Arch, CompilerId};

/// A store optimization class that can lead to persistency races (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StoreOptimization {
    /// Use a non-atomic pair of stores for a 64-bit store.
    NonAtomicStorePair,
    /// Replace a sequence of stores of zero with a `memset`.
    ZeroRunToMemset,
    /// Replace a sequence of assignments with a `memmove` or `memcpy`.
    AssignRunToMemmoveOrMemcpy,
    /// Replace a sequence of assignments with a `memcpy`.
    AssignRunToMemcpy,
    /// Replace a sequence of assignments with a `memmove`.
    AssignRunToMemmove,
}

impl fmt::Display for StoreOptimization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StoreOptimization::NonAtomicStorePair => {
                "Use a non-atomic pair of stores for a 64-bit store"
            }
            StoreOptimization::ZeroRunToMemset => "Replace a seq. of stores of zero with a memset",
            StoreOptimization::AssignRunToMemmoveOrMemcpy => {
                "Replace a seq. of assignments with a memmove or memcpy"
            }
            StoreOptimization::AssignRunToMemcpy => "Replace a seq. of assignments with a memcpy",
            StoreOptimization::AssignRunToMemmove => "Replace a seq. of assignments with a memmove",
        })
    }
}

/// The store optimizations the paper's study observed for a given compiler
/// and architecture (Table 2a).
pub fn observed_optimizations(compiler: CompilerId, arch: Arch) -> Vec<StoreOptimization> {
    use StoreOptimization::*;
    match (compiler, arch) {
        (CompilerId::Gcc, Arch::Arm64) => vec![
            NonAtomicStorePair,
            ZeroRunToMemset,
            AssignRunToMemmoveOrMemcpy,
        ],
        (CompilerId::Clang, Arch::Arm64) => vec![ZeroRunToMemset, AssignRunToMemmoveOrMemcpy],
        (CompilerId::Clang, Arch::X86_64) => vec![ZeroRunToMemset, AssignRunToMemcpy],
        (CompilerId::Gcc, Arch::X86_64) => vec![AssignRunToMemmove],
    }
}

/// Renders the six rows of Table 2a.
pub fn render_table2a() -> String {
    let mut out = String::from("Compiler\tArch\tStore Optimizations\n");
    let rows: [(&str, Arch, StoreOptimization); 6] = [
        ("gcc", Arch::Arm64, StoreOptimization::NonAtomicStorePair),
        (
            "gcc & LLVM-clang",
            Arch::Arm64,
            StoreOptimization::ZeroRunToMemset,
        ),
        (
            "gcc & LLVM-clang",
            Arch::Arm64,
            StoreOptimization::AssignRunToMemmoveOrMemcpy,
        ),
        (
            "LLVM-clang",
            Arch::X86_64,
            StoreOptimization::ZeroRunToMemset,
        ),
        (
            "LLVM-clang",
            Arch::X86_64,
            StoreOptimization::AssignRunToMemcpy,
        ),
        ("gcc", Arch::X86_64, StoreOptimization::AssignRunToMemmove),
    ];
    for (compilers, arch, opt) in rows {
        out.push_str(&format!("{compilers}\t{arch}\t{opt}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_gcc_arm64_pairs_stores() {
        for (c, a) in [
            (CompilerId::Gcc, Arch::X86_64),
            (CompilerId::Clang, Arch::Arm64),
            (CompilerId::Clang, Arch::X86_64),
        ] {
            assert!(!observed_optimizations(c, a).contains(&StoreOptimization::NonAtomicStorePair));
        }
        assert!(observed_optimizations(CompilerId::Gcc, Arch::Arm64)
            .contains(&StoreOptimization::NonAtomicStorePair));
    }

    #[test]
    fn every_pair_has_some_optimization() {
        for c in [CompilerId::Gcc, CompilerId::Clang] {
            for a in [Arch::X86_64, Arch::Arm64] {
                assert!(
                    !observed_optimizations(c, a).is_empty(),
                    "{c} {a} should apply at least one optimization"
                );
            }
        }
    }

    #[test]
    fn table_2a_has_six_rows() {
        let rendered = render_table2a();
        assert_eq!(rendered.lines().count(), 7); // header + 6 rows
        assert!(rendered.contains("memset"));
        assert!(rendered.contains("non-atomic pair"));
    }

    #[test]
    fn rules_agree_with_lowering_config() {
        use crate::config::{CompilerConfig, OptLevel};
        // Table 2a says gcc/ARM64 pairs 64-bit stores; lowering tears there.
        for c in [CompilerId::Gcc, CompilerId::Clang] {
            for a in [Arch::X86_64, Arch::Arm64] {
                let expects_tearing =
                    observed_optimizations(c, a).contains(&StoreOptimization::NonAtomicStorePair);
                let cfg = CompilerConfig::new(c, a, OptLevel::O3);
                assert_eq!(cfg.tear_wide_stores, expects_tearing, "{c} {a}");
            }
        }
    }
}
