//! The coverage plane: per-site persistency verdicts and crash-space
//! cartography, measured on the deterministic virtual clock.
//!
//! This is the third observability plane. The span/metrics plane (PR 3)
//! records *how* a run executed and the wall-clock telemetry plane (PR 8)
//! records *how long* it took; this plane records *how much was checked* —
//! which static store/flush/fence/load sites were exercised and with what
//! verdict, and how much of the crash-state space was explored, pruned, or
//! sampled away.
//!
//! Everything here lives on the logical side of the determinism contract:
//! a [`SiteTable`] accumulates alongside `ExecStats` (absorb / minus /
//! prune attribution follow the identical flow), and the exported JSON is
//! byte-identical across worker counts and fork/prune/GC strategy choices.
//! Nothing in this module feeds back into the state fingerprint or the
//! detector token — observing coverage never changes what gets pruned.

use std::collections::HashMap;

use crate::json::Json;

/// What kind of static program site a counter row describes.
///
/// The discriminant order is the canonical export order (stores first,
/// loads last), so derived `Ord` is load-bearing for byte-stable output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SiteKind {
    /// A store / memset / memcpy / CAS write site.
    Store,
    /// A `clflush` / `clflushopt` / `clwb` site.
    Flush,
    /// An `sfence` / `mfence` site.
    Fence,
    /// A load site (read from persistent memory).
    Load,
}

impl SiteKind {
    /// Lower-case name used in JSON and tables.
    pub fn name(self) -> &'static str {
        match self {
            SiteKind::Store => "store",
            SiteKind::Flush => "flush",
            SiteKind::Fence => "fence",
            SiteKind::Load => "load",
        }
    }
}

/// Interned handle for a `(kind, label)` site within one [`SiteTable`].
///
/// Ids are table-local insertion indices: stable within a run (the op
/// stream is deterministic) but not across tables — merging goes through
/// labels, never through raw ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteId(pub u32);

/// Per-site counters. All fields are monotone event counts on the virtual
/// clock; which fields a site uses depends on its [`SiteKind`]:
///
/// - stores: `executed` / `committed` / `persisted` (line-chunk granular);
/// - flushes: `executed` / `effective` (raised a persisted-line floor) /
///   `redundant` (committed without changing any persisted prefix) —
///   `executed - effective - redundant` is the *ineffective* residue,
///   flushes that executed but never committed before a crash cut them;
/// - fences: `executed` / `draining` (retired at least one buffered entry)
///   / `empty`;
/// - loads: `executed` / `pre_crash` (observed at least one byte of
///   pre-crash provenance, i.e. ran against a recovered image).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SiteStats {
    /// Ops executed at this site (store chunks, flush ops, fences, loads).
    pub executed: u64,
    /// Store chunks globally committed (drained from every store buffer).
    pub committed: u64,
    /// Store chunks that reached the persisted prefix of their line.
    pub persisted: u64,
    /// Flush commits that raised a persisted-line floor.
    pub effective: u64,
    /// Flush commits that changed no persisted prefix.
    pub redundant: u64,
    /// Fences that retired at least one buffered entry.
    pub draining: u64,
    /// Fences that found every buffer already empty.
    pub empty: u64,
    /// Loads that observed pre-crash state through the recovered image.
    pub pre_crash: u64,
}

impl SiteStats {
    /// Adds `other` into `self`, field-wise.
    pub fn absorb(&mut self, other: &SiteStats) {
        self.executed += other.executed;
        self.committed += other.committed;
        self.persisted += other.persisted;
        self.effective += other.effective;
        self.redundant += other.redundant;
        self.draining += other.draining;
        self.empty += other.empty;
        self.pre_crash += other.pre_crash;
    }

    /// Field-wise difference `self - earlier`; counters are monotone, so a
    /// later snapshot always dominates an earlier one of the same run.
    pub fn minus(&self, earlier: &SiteStats) -> SiteStats {
        SiteStats {
            executed: self.executed - earlier.executed,
            committed: self.committed - earlier.committed,
            persisted: self.persisted - earlier.persisted,
            effective: self.effective - earlier.effective,
            redundant: self.redundant - earlier.redundant,
            draining: self.draining - earlier.draining,
            empty: self.empty - earlier.empty,
            pre_crash: self.pre_crash - earlier.pre_crash,
        }
    }
}

/// The per-site outcome after a full checking run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The site never executed: the suite has a coverage hole here.
    Unexercised,
    /// The site executed and no persistency race was reported against it.
    Clean,
    /// A persistency race in the final report names this site's label.
    Raced,
}

impl Verdict {
    /// Lower-case name used in JSON and tables.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Unexercised => "unexercised",
            Verdict::Clean => "clean",
            Verdict::Raced => "raced",
        }
    }
}

/// Verdict transition function: `unexercised → clean → raced` as evidence
/// accumulates. `raced` dominates (a raced site is still raced no matter
/// how many clean executions it also had); `clean` requires execution.
pub fn verdict(executed: u64, raced: bool) -> Verdict {
    if raced {
        Verdict::Raced
    } else if executed > 0 {
        Verdict::Clean
    } else {
        Verdict::Unexercised
    }
}

/// Accumulator for per-site counters plus the persisted-line heatmap.
///
/// Follows the `ExecStats` flow exactly: lives in the memory model during
/// execution, is snapshotted per crash point, absorbed across runs, and
/// attributed to pruned class members as `member + (rep_total - rep_prefix)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SiteTable {
    /// `(kind, label) -> index into entries`.
    index: HashMap<(SiteKind, &'static str), u32>,
    /// Sites in first-execution order.
    entries: Vec<(SiteKind, &'static str, SiteStats)>,
    /// Persisted-line touch heatmap: line base address → number of
    /// flush-driven persisted-floor raises that touched the line.
    heat: HashMap<u64, u64>,
}

impl SiteTable {
    /// Interns `(kind, label)` and returns its id.
    pub fn site(&mut self, kind: SiteKind, label: &'static str) -> SiteId {
        if let Some(&i) = self.index.get(&(kind, label)) {
            return SiteId(i);
        }
        let i = u32::try_from(self.entries.len()).expect("site count fits u32");
        self.index.insert((kind, label), i);
        self.entries.push((kind, label, SiteStats::default()));
        SiteId(i)
    }

    /// Interns the site and returns its mutable counters in one step.
    pub fn record(&mut self, kind: SiteKind, label: &'static str) -> &mut SiteStats {
        let SiteId(i) = self.site(kind, label);
        &mut self.entries[i as usize].2
    }

    /// Counts one flush-driven persisted-floor raise touching `line`.
    pub fn touch_line(&mut self, line: u64) {
        *self.heat.entry(line).or_insert(0) += 1;
    }

    /// Number of interned sites.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no site has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds every site and heatmap count of `other` into `self`.
    pub fn absorb(&mut self, other: &SiteTable) {
        for (kind, label, stats) in &other.entries {
            self.record(*kind, label).absorb(stats);
        }
        for (line, n) in &other.heat {
            *self.heat.entry(*line).or_insert(0) += n;
        }
    }

    /// Difference `self - earlier` for prune attribution: the counters a
    /// representative run accumulated after the `earlier` snapshot was
    /// taken. Both tables come from the same deterministic run, so every
    /// site of `earlier` is present in `self` with dominating counters.
    pub fn minus(&self, earlier: &SiteTable) -> SiteTable {
        let mut out = SiteTable::default();
        for (kind, label, stats) in &self.entries {
            let base = earlier
                .index
                .get(&(*kind, label))
                .map(|&i| earlier.entries[i as usize].2)
                .unwrap_or_default();
            *out.record(*kind, label) = stats.minus(&base);
        }
        for (line, n) in &self.heat {
            let base = earlier.heat.get(line).copied().unwrap_or(0);
            if n - base > 0 {
                out.heat.insert(*line, n - base);
            }
        }
        out
    }

    /// Sites sorted by `(kind, label)` — the canonical export order.
    pub fn sorted(&self) -> Vec<(SiteKind, &'static str, SiteStats)> {
        let mut rows = self.entries.clone();
        rows.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        rows
    }

    /// Heatmap sorted by line base address.
    pub fn heat_sorted(&self) -> Vec<(u64, u64)> {
        let mut rows: Vec<(u64, u64)> = self.heat.iter().map(|(&l, &n)| (l, n)).collect();
        rows.sort_unstable();
        rows
    }

    /// Canonical single-line rendering for paranoid cross-checks: every
    /// site and heatmap entry in sorted order. Two tables with equal
    /// logical content render identically regardless of insertion order.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (kind, label, s) in self.sorted() {
            let _ = write!(
                out,
                "{}:{}={},{},{},{},{},{},{},{};",
                kind.name(),
                label,
                s.executed,
                s.committed,
                s.persisted,
                s.effective,
                s.redundant,
                s.draining,
                s.empty,
                s.pre_crash,
            );
        }
        for (line, n) in self.heat_sorted() {
            let _ = write!(out, "@{line:x}={n};");
        }
        out
    }
}

/// Crash-space exploration shape for one phase of the model-check sweep.
///
/// All fields are derived from the profiling run's crash-point stream and
/// fingerprint structure, which are strategy-independent: `explored` is
/// the number of *distinct crash states* (equivalence classes) among the
/// sampled points — what pruning resumes when on, and what exhaustive
/// resumption covers redundantly when off — so the chart is byte-identical
/// whether or not fork/prune/GC actually ran.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PhaseChart {
    /// Phase index (0 = pre-crash execution, 1 = first recovery, ...).
    pub phase: usize,
    /// Crash points the phase offered.
    pub points: u64,
    /// Points skipped by `--sample-every` periodic sampling.
    pub sampled_out: u64,
    /// Distinct crash-state equivalence classes among the sampled points.
    pub explored: u64,
    /// Sampled points whose crash state duplicated an earlier class.
    pub prunable: u64,
    /// Class-size histogram: `(class size, number of classes)`, sorted.
    pub class_sizes: Vec<(u64, u64)>,
}

/// Crash-space cartography for a whole run: one chart per phase.
/// Random-mode runs draw points instead of enumerating them, so their
/// cartography is empty.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Cartography {
    /// Per-phase exploration charts.
    pub phases: Vec<PhaseChart>,
}

/// Everything the coverage plane knows after a run, bundled for export.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Per-site counters and the persisted-line heatmap.
    pub sites: SiteTable,
    /// Crash-space exploration charts.
    pub cartography: Cartography,
    /// Labels named by persistency races in the final report (sorted,
    /// deduplicated) — these drive the `raced` verdict.
    pub raced_labels: Vec<String>,
}

/// Schema version stamped into every coverage JSON document.
pub const COVERAGE_SCHEMA_VERSION: u64 = 1;

/// A site's verdict under this report: `raced` if a reported race names
/// its label, else `clean`/`unexercised` by execution count.
impl CoverageReport {
    /// Verdict for one site row.
    pub fn verdict_for(&self, label: &str, stats: &SiteStats) -> Verdict {
        let raced = self.raced_labels.iter().any(|l| l == label);
        verdict(stats.executed, raced)
    }

    /// Summary counters used by the JSON export, the human table, and the
    /// CI gate. Attribution is measured over store/flush/fence executions
    /// only (loads are observational); `anonymous` means an empty label.
    pub fn summary(&self) -> CoverageSummary {
        let mut s = CoverageSummary::default();
        for (kind, label, stats) in self.sites.sorted() {
            s.sites += 1;
            match self.verdict_for(label, &stats) {
                Verdict::Raced => s.raced_sites += 1,
                Verdict::Clean => s.clean_sites += 1,
                Verdict::Unexercised => s.unexercised_sites += 1,
            }
            if kind == SiteKind::Load {
                continue;
            }
            s.attributable_ops += stats.executed;
            if label.is_empty() {
                s.anonymous_ops += stats.executed;
            }
        }
        s.lines_touched = self.sites.heat_sorted().len() as u64;
        s
    }

    /// Folds another report into this one for suite-level aggregation:
    /// the site tables absorb, raced labels union (kept sorted and
    /// deduplicated). The cartography is dropped — crash-space phases are
    /// per-program and do not sum meaningfully across a suite.
    pub fn absorb_suite(&mut self, other: &CoverageReport) {
        self.sites.absorb(&other.sites);
        for label in &other.raced_labels {
            if !self.raced_labels.contains(label) {
                self.raced_labels.push(label.clone());
            }
        }
        self.raced_labels.sort();
    }
}

/// Aggregate numbers for the gate and the table header.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CoverageSummary {
    /// Total interned sites.
    pub sites: u64,
    /// Sites with a `raced` verdict.
    pub raced_sites: u64,
    /// Sites with a `clean` verdict.
    pub clean_sites: u64,
    /// Sites with an `unexercised` verdict.
    pub unexercised_sites: u64,
    /// Executed store/flush/fence ops (the attribution denominator).
    pub attributable_ops: u64,
    /// Of those, ops at sites with an empty label.
    pub anonymous_ops: u64,
    /// Distinct persisted lines touched by effective flushes.
    pub lines_touched: u64,
}

impl CoverageSummary {
    /// Permille of store/flush/fence ops attributed to a named site.
    /// Integer arithmetic keeps the rendering byte-stable.
    pub fn attributed_permille(&self) -> u64 {
        if self.attributable_ops == 0 {
            return 1000;
        }
        (self.attributable_ops - self.anonymous_ops) * 1000 / self.attributable_ops
    }
}

/// Builds the stable-field-order coverage JSON document. Field order is
/// fixed, every number is an integer, and all collections are sorted, so
/// the rendering is byte-identical for logically equal reports.
pub fn coverage_json(report: &CoverageReport) -> Json {
    let summary = report.summary();
    let sites = report.sites.sorted().into_iter().map(|(kind, label, s)| {
        Json::obj([
            ("kind", kind.name().into()),
            ("label", label.into()),
            ("verdict", report.verdict_for(label, &s).name().into()),
            ("executed", s.executed.into()),
            ("committed", s.committed.into()),
            ("persisted", s.persisted.into()),
            ("effective", s.effective.into()),
            ("redundant", s.redundant.into()),
            ("draining", s.draining.into()),
            ("empty", s.empty.into()),
            ("pre_crash", s.pre_crash.into()),
        ])
    });
    let phases = report.cartography.phases.iter().map(|p| {
        Json::obj([
            ("phase", p.phase.into()),
            ("points", p.points.into()),
            ("sampled_out", p.sampled_out.into()),
            ("explored", p.explored.into()),
            ("prunable", p.prunable.into()),
            (
                "class_sizes",
                Json::arr(
                    p.class_sizes
                        .iter()
                        .map(|&(size, count)| Json::arr([size.into(), count.into()])),
                ),
            ),
        ])
    });
    let heat = report
        .sites
        .heat_sorted()
        .into_iter()
        .map(|(line, n)| Json::arr([line.into(), n.into()]));
    Json::obj([
        ("schema_version", COVERAGE_SCHEMA_VERSION.into()),
        (
            "summary",
            Json::obj([
                ("sites", summary.sites.into()),
                ("raced_sites", summary.raced_sites.into()),
                ("clean_sites", summary.clean_sites.into()),
                ("unexercised_sites", summary.unexercised_sites.into()),
                ("attributable_ops", summary.attributable_ops.into()),
                ("anonymous_ops", summary.anonymous_ops.into()),
                ("attributed_permille", summary.attributed_permille().into()),
                ("lines_touched", summary.lines_touched.into()),
            ]),
        ),
        (
            "raced_labels",
            Json::arr(report.raced_labels.iter().map(|l| l.as_str().into())),
        ),
        ("sites", Json::arr(sites)),
        (
            "cartography",
            Json::obj([("phases", Json::arr(phases)), ("heatmap", Json::arr(heat))]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_transitions() {
        // unexercised → clean → raced as evidence accumulates.
        assert_eq!(verdict(0, false), Verdict::Unexercised);
        assert_eq!(verdict(1, false), Verdict::Clean);
        assert_eq!(verdict(5, true), Verdict::Raced);
        // raced dominates even without a recorded execution in this
        // table (e.g. the racing execution was attributed elsewhere).
        assert_eq!(verdict(0, true), Verdict::Raced);
    }

    #[test]
    fn interning_is_stable_and_merging_goes_by_label() {
        let mut t = SiteTable::default();
        let a = t.site(SiteKind::Store, "s1");
        let b = t.site(SiteKind::Flush, "f1");
        assert_eq!(t.site(SiteKind::Store, "s1"), a);
        assert_ne!(a, b);
        t.record(SiteKind::Store, "s1").executed += 3;

        let mut other = SiteTable::default();
        // Different insertion order; absorb must merge by (kind, label).
        other.record(SiteKind::Flush, "f1").executed += 2;
        other.record(SiteKind::Store, "s1").executed += 1;
        t.absorb(&other);
        let rows = t.sorted();
        assert_eq!(
            rows[0],
            (
                SiteKind::Store,
                "s1",
                SiteStats {
                    executed: 4,
                    ..SiteStats::default()
                }
            )
        );
        assert_eq!(rows[1].2.executed, 2);
    }

    #[test]
    fn minus_then_absorb_reconstructs_prune_attribution() {
        // rep prefix snapshot, then rep total; member = member_prefix +
        // (total - prefix) must equal what a full member run would count.
        let mut prefix = SiteTable::default();
        prefix.record(SiteKind::Store, "s").executed = 2;
        prefix.touch_line(64);
        let mut total = prefix.clone();
        total.record(SiteKind::Store, "s").executed = 5;
        total.record(SiteKind::Fence, "f").draining = 1;
        total.record(SiteKind::Fence, "f").executed = 1;
        total.touch_line(64);
        total.touch_line(128);

        let delta = total.minus(&prefix);
        let mut member = prefix.clone();
        member.absorb(&delta);
        assert_eq!(member.canonical(), total.canonical());
    }

    #[test]
    fn canonical_is_insertion_order_independent() {
        let mut a = SiteTable::default();
        a.record(SiteKind::Store, "x").executed = 1;
        a.record(SiteKind::Store, "a").executed = 2;
        let mut b = SiteTable::default();
        b.record(SiteKind::Store, "a").executed = 2;
        b.record(SiteKind::Store, "x").executed = 1;
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn redundant_flush_shows_in_summary_and_json() {
        let mut report = CoverageReport::default();
        {
            let s = report.sites.record(SiteKind::Flush, "log.flush");
            s.executed = 4;
            s.effective = 1;
            s.redundant = 3;
        }
        report.sites.record(SiteKind::Store, "log.write").executed = 4;
        report.raced_labels = vec!["log.write".to_owned()];
        let json = coverage_json(&report).render();
        assert!(json.contains("\"redundant\":3"), "{json}");
        assert!(json.contains("\"verdict\":\"raced\""), "{json}");
        assert!(json.contains("\"attributed_permille\":1000"), "{json}");
        let summary = report.summary();
        assert_eq!(summary.raced_sites, 1);
        assert_eq!(summary.clean_sites, 1);
    }

    #[test]
    fn anonymous_ops_lower_attribution() {
        let mut report = CoverageReport::default();
        report.sites.record(SiteKind::Flush, "").executed = 1;
        report.sites.record(SiteKind::Store, "s").executed = 3;
        // Loads never enter the attribution denominator.
        report.sites.record(SiteKind::Load, "").executed = 100;
        let summary = report.summary();
        assert_eq!(summary.attributable_ops, 4);
        assert_eq!(summary.anonymous_ops, 1);
        assert_eq!(summary.attributed_permille(), 750);
    }
}
