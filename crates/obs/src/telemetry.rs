//! Wall-clock telemetry: the engine's *second* observability plane.
//!
//! The trace/metrics plane ([`crate::span`], [`crate::metrics`]) is stamped
//! with a **virtual** clock and is part of the logical report: it must be
//! byte-identical at every worker count and with every physical strategy
//! (fork, pruning, GC) toggled. This module is the opposite plane: **real
//! time** for humans and dashboards — phase timers, worker utilization,
//! progress counters, throughput time series — and therefore inherently
//! nondeterministic.
//!
//! The contract that keeps the two planes apart:
//!
//! 1. Telemetry is **write-only** from the engine's point of view: nothing
//!    in the engine, the memory system, or a detector ever *reads* a
//!    telemetry value to make a decision. Reports, traces, metrics, and
//!    `--json` output are byte-identical with telemetry on or off (enforced
//!    by `telemetry_equivalence.rs` in the bench crate).
//! 2. Telemetry output goes to **stderr or side files**, never stdout, so
//!    machine-readable stdout (e.g. `yashme --json`) can never interleave
//!    with a heartbeat line.
//! 3. A disabled [`Telemetry`] (the default everywhere) is a handful of
//!    untaken branches — no timestamps, no locks, no allocation.
//!
//! [`Telemetry`] is shared by `Arc`: the coordinator, every pool worker,
//! and the background [`Reporter`] thread update and sample it through
//! atomics. Phase attribution is two-layer: the *top-level* phases
//! ([`WallPhase::top_level`]) are disjoint segments of the coordinator's
//! own timeline and sum to ≈100% of a run's wall time ([`Telemetry::
//! coverage`]); nested phases (snapshot capture, GC passes) time work that
//! happens *inside* a top-level segment and are reported indented,
//! excluded from the coverage sum so nothing is counted twice.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::Json;

/// A named wall-clock phase of the exploration engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WallPhase {
    /// The profiling run: the deterministic pre-crash schedule that counts
    /// crash points (and, in fork mode, captures snapshots).
    ProfileRun,
    /// Resuming post-crash suffixes from snapshots (fork mode).
    SuffixResume,
    /// Full re-executions: fallback model checking and random-mode runs.
    FullRun,
    /// Merging per-run outcomes into the aggregated report.
    Merge,
    /// Copy-on-write snapshot capture at a crash point (inside the
    /// profiling run).
    SnapshotCapture,
    /// One streaming-GC mark-sweep pass (inside whichever run it hit).
    GcPass,
}

impl WallPhase {
    /// Every phase, top-level first.
    pub const ALL: [WallPhase; 6] = [
        WallPhase::ProfileRun,
        WallPhase::SuffixResume,
        WallPhase::FullRun,
        WallPhase::Merge,
        WallPhase::SnapshotCapture,
        WallPhase::GcPass,
    ];

    /// Stable name used in the profile tree, JSONL snapshots, and
    /// Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            WallPhase::ProfileRun => "profile-run",
            WallPhase::SuffixResume => "suffix-resume",
            WallPhase::FullRun => "full-run",
            WallPhase::Merge => "merge",
            WallPhase::SnapshotCapture => "snapshot-capture",
            WallPhase::GcPass => "gc-pass",
        }
    }

    /// Top-level phases are disjoint segments of the coordinator timeline;
    /// their sum over a run is the covered wall time. Nested phases happen
    /// inside a top-level segment and don't count toward coverage.
    pub fn top_level(self) -> bool {
        !matches!(self, WallPhase::SnapshotCapture | WallPhase::GcPass)
    }

    fn index(self) -> usize {
        match self {
            WallPhase::ProfileRun => 0,
            WallPhase::SuffixResume => 1,
            WallPhase::FullRun => 2,
            WallPhase::Merge => 3,
            WallPhase::SnapshotCapture => 4,
            WallPhase::GcPass => 5,
        }
    }
}

/// Per-phase accumulator: total nanoseconds and occurrence count.
#[derive(Debug, Default)]
struct PhaseSlot {
    nanos: AtomicU64,
    count: AtomicU64,
}

/// Busy/idle accounting for one worker-pool thread across one fan-out.
///
/// `idle` is queue-stall time: how long the worker sat blocked on the work
/// queue (including the final wait that ends with queue closure).
#[derive(Debug, Clone, Copy)]
pub struct WorkerStat {
    /// Time spent executing jobs.
    pub busy: Duration,
    /// Time spent blocked on the work queue.
    pub idle: Duration,
    /// Jobs completed.
    pub jobs: u64,
}

/// Counters of the suite-global work-stealing scheduler.
///
/// `jobs` and `batches` are deterministic functions of the engine
/// configuration (chunking derives from profile-run cost estimates);
/// `steals` and `queue_depth` depend on thread timing, which is why all
/// four live in this plane and never in the deterministic metrics
/// registry or `--json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Individual jobs submitted (one per crash-point suffix, run spec, …).
    pub jobs: u64,
    /// Cost-bucketed chunks those jobs were batched into.
    pub batches: u64,
    /// Chunks executed by a lane other than their home lane.
    pub steals: u64,
    /// High-water mark of chunks queued at submission time.
    pub queue_depth: u64,
}

impl SchedCounters {
    /// Counter-wise difference (`queue_depth` is a gauge: the later
    /// high-water mark wins), for per-benchmark deltas of a shared handle.
    pub fn minus(&self, earlier: &SchedCounters) -> SchedCounters {
        SchedCounters {
            jobs: self.jobs.saturating_sub(earlier.jobs),
            batches: self.batches.saturating_sub(earlier.batches),
            steals: self.steals.saturating_sub(earlier.steals),
            queue_depth: self.queue_depth,
        }
    }
}

/// One point of the ring-buffer time series.
#[derive(Debug, Clone)]
pub struct TelemetrySample {
    /// Offset from telemetry start.
    pub at: Duration,
    /// Simulated events published so far (all runs, all workers).
    pub events: u64,
    /// Instantaneous event rate since the previous sample (events per
    /// second; total-average when this is the first sample).
    pub events_per_s: u64,
    /// Crash points completed (resumed, re-executed, or attributed).
    pub crash_points_done: u64,
    /// Crash points discovered by profiling (0 until profiling finishes,
    /// and in modes without systematic crash points).
    pub crash_points_total: u64,
    /// Post-crash suffixes physically resumed from snapshots.
    pub suffixes_resumed: u64,
    /// Crash points answered by class attribution instead of execution.
    pub suffixes_pruned: u64,
    /// Live event-table slots (gauge; last published value).
    pub live_slots: u64,
    /// Streaming-GC mark-sweep passes completed.
    pub gc_passes: u64,
    /// Simulated executions completed.
    pub executions: u64,
    /// Naive remaining-time estimate from crash-point progress.
    pub eta: Option<Duration>,
}

/// Ring-buffer state behind one mutex: the series plus the previous
/// sample's cursor for rate computation.
#[derive(Debug)]
struct Ring {
    samples: VecDeque<TelemetrySample>,
    cap: usize,
    last_events: u64,
    last_at: Duration,
}

/// The wall-clock telemetry plane. See the module docs for the contract.
pub struct Telemetry {
    enabled: bool,
    start: Instant,
    phases: [PhaseSlot; 6],
    /// Total engine wall time (sum over engine runs), set by the engine at
    /// the end of each run; the denominator of [`Telemetry::coverage`].
    total_nanos: AtomicU64,
    events: AtomicU64,
    executions: AtomicU64,
    crash_points_total: AtomicU64,
    crash_points_done: AtomicU64,
    suffixes_resumed: AtomicU64,
    suffixes_pruned: AtomicU64,
    live_slots: AtomicU64,
    sched_jobs: AtomicU64,
    sched_batches: AtomicU64,
    sched_steals: AtomicU64,
    sched_queue_depth: AtomicU64,
    workers: Mutex<Vec<WorkerStat>>,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("events", &self.events.load(Ordering::Relaxed))
            .field("executions", &self.executions.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An enabled telemetry plane starting its clock now.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A disabled instance: every recording call is an untaken branch.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Self {
        Telemetry {
            enabled,
            start: Instant::now(),
            phases: Default::default(),
            total_nanos: AtomicU64::new(0),
            events: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            crash_points_total: AtomicU64::new(0),
            crash_points_done: AtomicU64::new(0),
            suffixes_resumed: AtomicU64::new(0),
            suffixes_pruned: AtomicU64::new(0),
            live_slots: AtomicU64::new(0),
            sched_jobs: AtomicU64::new(0),
            sched_batches: AtomicU64::new(0),
            sched_steals: AtomicU64::new(0),
            sched_queue_depth: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
            ring: Mutex::new(Ring {
                samples: VecDeque::new(),
                cap: 1024,
                last_events: 0,
                last_at: Duration::ZERO,
            }),
        }
    }

    /// The process-wide disabled instance, for call sites that always pass
    /// a telemetry handle.
    pub fn off() -> &'static Arc<Telemetry> {
        static OFF: OnceLock<Arc<Telemetry>> = OnceLock::new();
        OFF.get_or_init(|| Arc::new(Telemetry::disabled()))
    }

    /// Whether this instance records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    // ------------------------------------------------------------------
    // Recording (engine side).
    // ------------------------------------------------------------------

    /// Starts timing `phase`; the elapsed time is attributed when the
    /// returned guard drops. Free when disabled.
    pub fn time(&self, phase: WallPhase) -> PhaseTimer<'_> {
        PhaseTimer {
            tel: self,
            phase,
            start: self.enabled.then(Instant::now),
        }
    }

    /// Attributes `elapsed` to `phase` directly (one occurrence).
    pub fn add_phase(&self, phase: WallPhase, elapsed: Duration) {
        if !self.enabled {
            return;
        }
        let slot = &self.phases[phase.index()];
        slot.nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds one engine run's wall time to the coverage denominator.
    pub fn add_total(&self, elapsed: Duration) {
        if self.enabled {
            self.total_nanos
                .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Publishes `n` freshly executed simulated events.
    pub fn add_events(&self, n: u64) {
        if self.enabled && n > 0 {
            self.events.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one completed simulated execution.
    pub fn execution_done(&self) {
        if self.enabled {
            self.executions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds `n` crash points to the progress denominator (profiling done).
    pub fn add_points_total(&self, n: u64) {
        if self.enabled {
            self.crash_points_total.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Marks `n` crash points completed (resumed, re-executed, or
    /// attributed).
    pub fn add_points_done(&self, n: u64) {
        if self.enabled {
            self.crash_points_done.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one post-crash suffix physically resumed from a snapshot.
    pub fn suffix_resumed(&self) {
        if self.enabled {
            self.suffixes_resumed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records `n` crash points answered by equivalence-class attribution.
    pub fn add_pruned(&self, n: u64) {
        if self.enabled && n > 0 {
            self.suffixes_pruned.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Updates the live event-table slot gauge.
    pub fn set_live_slots(&self, n: u64) {
        if self.enabled {
            self.live_slots.store(n, Ordering::Relaxed);
        }
    }

    /// Records one worker's busy/idle split for a finished fan-out.
    pub fn record_worker(&self, stat: WorkerStat) {
        if self.enabled {
            self.workers.lock().expect("worker stats").push(stat);
        }
    }

    /// Records one scheduler batch: `jobs` items bucketed into `chunks`
    /// cost-balanced chunks, with `depth` chunks queued at submission.
    pub fn add_sched_batch(&self, jobs: u64, chunks: u64, depth: u64) {
        if self.enabled {
            self.sched_jobs.fetch_add(jobs, Ordering::Relaxed);
            self.sched_batches.fetch_add(chunks, Ordering::Relaxed);
            self.sched_queue_depth.fetch_max(depth, Ordering::Relaxed);
        }
    }

    /// Records `n` chunks executed away from their home lane.
    pub fn add_sched_steals(&self, n: u64) {
        if self.enabled && n > 0 {
            self.sched_steals.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The scheduler counters recorded so far.
    pub fn sched_counters(&self) -> SchedCounters {
        SchedCounters {
            jobs: self.sched_jobs.load(Ordering::Relaxed),
            batches: self.sched_batches.load(Ordering::Relaxed),
            steals: self.sched_steals.load(Ordering::Relaxed),
            queue_depth: self.sched_queue_depth.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Sampling and export (reporter / front-end side).
    // ------------------------------------------------------------------

    fn phase_nanos(&self, phase: WallPhase) -> u64 {
        self.phases[phase.index()].nanos.load(Ordering::Relaxed)
    }

    fn phase_count(&self, phase: WallPhase) -> u64 {
        self.phases[phase.index()].count.load(Ordering::Relaxed)
    }

    /// A snapshot of the counters right now, with the event rate computed
    /// against the previous recorded sample. Does not touch the ring.
    pub fn sample(&self) -> TelemetrySample {
        let ring = self.ring.lock().expect("telemetry ring");
        self.sample_against(&ring)
    }

    fn sample_against(&self, ring: &Ring) -> TelemetrySample {
        let at = self.start.elapsed();
        let events = self.events.load(Ordering::Relaxed);
        let delta_e = events.saturating_sub(ring.last_events);
        let delta_t = at.saturating_sub(ring.last_at);
        let window = if ring.last_at.is_zero() { at } else { delta_t };
        let window_events = if ring.last_at.is_zero() {
            events
        } else {
            delta_e
        };
        let events_per_s = if window.as_nanos() == 0 {
            0
        } else {
            ((window_events as u128 * 1_000_000_000) / window.as_nanos()) as u64
        };
        let done = self.crash_points_done.load(Ordering::Relaxed);
        let total = self.crash_points_total.load(Ordering::Relaxed);
        let eta = (done > 0 && total > done).then(|| {
            Duration::from_nanos(
                ((at.as_nanos() * u128::from(total - done)) / u128::from(done)) as u64,
            )
        });
        TelemetrySample {
            at,
            events,
            events_per_s,
            crash_points_done: done,
            crash_points_total: total,
            suffixes_resumed: self.suffixes_resumed.load(Ordering::Relaxed),
            suffixes_pruned: self.suffixes_pruned.load(Ordering::Relaxed),
            live_slots: self.live_slots.load(Ordering::Relaxed),
            gc_passes: self.phase_count(WallPhase::GcPass),
            executions: self.executions.load(Ordering::Relaxed),
            eta,
        }
    }

    /// Takes a sample and appends it to the ring-buffer time series
    /// (evicting the oldest point past capacity).
    pub fn sample_and_record(&self) -> TelemetrySample {
        let mut ring = self.ring.lock().expect("telemetry ring");
        let sample = self.sample_against(&ring);
        ring.last_events = sample.events;
        ring.last_at = sample.at;
        if ring.samples.len() >= ring.cap {
            ring.samples.pop_front();
        }
        ring.samples.push_back(sample.clone());
        sample
    }

    /// The recorded time series, oldest first.
    pub fn samples(&self) -> Vec<TelemetrySample> {
        self.ring
            .lock()
            .expect("telemetry ring")
            .samples
            .iter()
            .cloned()
            .collect()
    }

    /// The recorded worker busy/idle stats.
    pub fn worker_stats(&self) -> Vec<WorkerStat> {
        self.workers.lock().expect("worker stats").clone()
    }

    /// Fraction of total engine wall time attributed to top-level phases
    /// (`0.0` when no run has finished).
    pub fn coverage(&self) -> f64 {
        let total = self.total_nanos.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let covered: u64 = WallPhase::ALL
            .iter()
            .filter(|p| p.top_level())
            .map(|&p| self.phase_nanos(p))
            .sum();
        covered as f64 / total as f64
    }

    /// One stderr heartbeat line, e.g.
    /// `[yashme] 12.3s | 42/160 crash points | 963 pruned | 528103 ev/s | ETA 8.2s`.
    pub fn heartbeat_line(&self, label: &str, s: &TelemetrySample) -> String {
        let mut line = format!("[{label}] {:.1?}", s.at);
        if s.crash_points_total > 0 {
            let _ = write!(
                line,
                " | {}/{} crash points",
                s.crash_points_done, s.crash_points_total
            );
        }
        if s.suffixes_pruned > 0 {
            let _ = write!(line, " | {} pruned", s.suffixes_pruned);
        }
        if s.suffixes_resumed > 0 {
            let _ = write!(line, " | {} resumed", s.suffixes_resumed);
        }
        let _ = write!(line, " | {} ev/s", s.events_per_s);
        if s.live_slots > 0 {
            let _ = write!(line, " | {} live slots", s.live_slots);
        }
        if let Some(eta) = s.eta {
            let _ = write!(line, " | ETA {eta:.1?}");
        }
        line
    }

    /// One JSONL snapshot document (no trailing newline). All values are
    /// integers: the virtual-plane JSON writer has no floats, and this
    /// plane follows the same discipline for easy diffing.
    pub fn jsonl_line(&self, s: &TelemetrySample) -> String {
        Json::obj([
            ("t_ms", Json::from(s.at.as_millis() as u64)),
            ("events", Json::from(s.events)),
            ("events_per_s", Json::from(s.events_per_s)),
            ("crash_points_done", Json::from(s.crash_points_done)),
            ("crash_points_total", Json::from(s.crash_points_total)),
            ("suffixes_resumed", Json::from(s.suffixes_resumed)),
            ("suffixes_pruned", Json::from(s.suffixes_pruned)),
            ("live_slots", Json::from(s.live_slots)),
            ("gc_passes", Json::from(s.gc_passes)),
            ("executions", Json::from(s.executions)),
            (
                "eta_ms",
                s.eta
                    .map_or(Json::Null, |d| Json::from(d.as_millis() as u64)),
            ),
        ])
        .render()
    }

    /// Prometheus text-format exposition of the final counters.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let secs = |n: u64| n as f64 / 1e9;
        out.push_str("# HELP yashme_phase_seconds_total Wall-clock seconds attributed to each engine phase.\n");
        out.push_str("# TYPE yashme_phase_seconds_total counter\n");
        for phase in WallPhase::ALL {
            let _ = writeln!(
                out,
                "yashme_phase_seconds_total{{phase=\"{}\"}} {:.6}",
                phase.name(),
                secs(self.phase_nanos(phase))
            );
        }
        out.push_str("# HELP yashme_phase_count_total Occurrences of each engine phase.\n");
        out.push_str("# TYPE yashme_phase_count_total counter\n");
        for phase in WallPhase::ALL {
            let _ = writeln!(
                out,
                "yashme_phase_count_total{{phase=\"{}\"}} {}",
                phase.name(),
                self.phase_count(phase)
            );
        }
        let counters: [(&str, &str, u64); 6] = [
            (
                "yashme_events_total",
                "Simulated events executed.",
                self.events.load(Ordering::Relaxed),
            ),
            (
                "yashme_executions_total",
                "Simulated executions completed.",
                self.executions.load(Ordering::Relaxed),
            ),
            (
                "yashme_crash_points_done_total",
                "Crash points completed.",
                self.crash_points_done.load(Ordering::Relaxed),
            ),
            (
                "yashme_suffixes_resumed_total",
                "Post-crash suffixes resumed from snapshots.",
                self.suffixes_resumed.load(Ordering::Relaxed),
            ),
            (
                "yashme_suffixes_pruned_total",
                "Crash points answered by equivalence-class attribution.",
                self.suffixes_pruned.load(Ordering::Relaxed),
            ),
            (
                "yashme_wall_seconds_total",
                "Engine run wall seconds.",
                0, // rendered separately below as a float
            ),
        ];
        for (name, help, value) in &counters[..5] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        let (name, help, _) = counters[5];
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(
            out,
            "{name} {:.6}",
            secs(self.total_nanos.load(Ordering::Relaxed))
        );
        out.push_str("# HELP yashme_crash_points Crash points discovered by profiling.\n");
        out.push_str("# TYPE yashme_crash_points gauge\n");
        let _ = writeln!(
            out,
            "yashme_crash_points {}",
            self.crash_points_total.load(Ordering::Relaxed)
        );
        out.push_str("# HELP yashme_live_slots Live event-table slots (last published).\n");
        out.push_str("# TYPE yashme_live_slots gauge\n");
        let _ = writeln!(
            out,
            "yashme_live_slots {}",
            self.live_slots.load(Ordering::Relaxed)
        );
        let sched = self.sched_counters();
        out.push_str("# HELP yashme_sched_jobs_total Jobs submitted to the work-stealing scheduler.\n");
        out.push_str("# TYPE yashme_sched_jobs_total counter\n");
        let _ = writeln!(out, "yashme_sched_jobs_total {}", sched.jobs);
        out.push_str(
            "# HELP yashme_sched_batches_total Cost-bucketed chunks submitted to the scheduler.\n",
        );
        out.push_str("# TYPE yashme_sched_batches_total counter\n");
        let _ = writeln!(out, "yashme_sched_batches_total {}", sched.batches);
        out.push_str(
            "# HELP yashme_sched_steals_total Chunks executed away from their home lane.\n",
        );
        out.push_str("# TYPE yashme_sched_steals_total counter\n");
        let _ = writeln!(out, "yashme_sched_steals_total {}", sched.steals);
        out.push_str(
            "# HELP yashme_sched_queue_depth High-water mark of queued chunks at submission.\n",
        );
        out.push_str("# TYPE yashme_sched_queue_depth gauge\n");
        let _ = writeln!(out, "yashme_sched_queue_depth {}", sched.queue_depth);
        out.push_str(
            "# HELP yashme_worker_busy_seconds_total Seconds each pool worker spent in jobs.\n",
        );
        out.push_str("# TYPE yashme_worker_busy_seconds_total counter\n");
        out.push_str(
            "# HELP yashme_worker_idle_seconds_total Seconds each pool worker spent queue-stalled.\n",
        );
        out.push_str("# TYPE yashme_worker_idle_seconds_total counter\n");
        for (i, w) in self.worker_stats().iter().enumerate() {
            let _ = writeln!(
                out,
                "yashme_worker_busy_seconds_total{{worker=\"{i}\"}} {:.6}",
                w.busy.as_secs_f64()
            );
            let _ = writeln!(
                out,
                "yashme_worker_idle_seconds_total{{worker=\"{i}\"}} {:.6}",
                w.idle.as_secs_f64()
            );
        }
        out
    }

    /// The post-run self-profile tree (for `--profile`), rendered in the
    /// same indent style as `--details`.
    pub fn render_profile(&self) -> String {
        let total = self.total_nanos.load(Ordering::Relaxed);
        let pct = |n: u64| {
            if total == 0 {
                0.0
            } else {
                100.0 * n as f64 / total as f64
            }
        };
        let dur = |n: u64| format!("{:.3?}", Duration::from_nanos(n));
        let mut out = String::from("self-profile (wall clock):\n");
        let _ = writeln!(
            out,
            "  {:<20} {:>12} {:>7} {:>9}",
            "phase", "wall", "share", "count"
        );
        let mut covered = 0u64;
        for phase in WallPhase::ALL.iter().filter(|p| p.top_level()) {
            let nanos = self.phase_nanos(*phase);
            let count = self.phase_count(*phase);
            if count == 0 {
                continue;
            }
            covered += nanos;
            let _ = writeln!(
                out,
                "  {:<20} {:>12} {:>6.1}% {:>9}",
                phase.name(),
                dur(nanos),
                pct(nanos),
                count
            );
        }
        let unattributed = total.saturating_sub(covered);
        let _ = writeln!(
            out,
            "  {:<20} {:>12} {:>6.1}%",
            "unattributed",
            dur(unattributed),
            pct(unattributed)
        );
        let _ = writeln!(
            out,
            "  {:<20} {:>12}  (coverage {:.1}%)",
            "total",
            dur(total),
            100.0 * self.coverage()
        );
        let nested: Vec<WallPhase> = WallPhase::ALL
            .iter()
            .copied()
            .filter(|p| !p.top_level() && self.phase_count(*p) > 0)
            .collect();
        if !nested.is_empty() {
            out.push_str("  nested (inside the phases above):\n");
            for phase in nested {
                let _ = writeln!(
                    out,
                    "    {:<18} {:>12} {:>6.1}% {:>9}",
                    phase.name(),
                    dur(self.phase_nanos(phase)),
                    pct(self.phase_nanos(phase)),
                    self.phase_count(phase)
                );
            }
        }
        let workers = self.worker_stats();
        if !workers.is_empty() {
            let busy: Duration = workers.iter().map(|w| w.busy).sum();
            let idle: Duration = workers.iter().map(|w| w.idle).sum();
            let jobs: u64 = workers.iter().map(|w| w.jobs).sum();
            let occupied = busy.as_secs_f64() + idle.as_secs_f64();
            let util = if occupied == 0.0 {
                0.0
            } else {
                100.0 * busy.as_secs_f64() / occupied
            };
            let _ = writeln!(
                out,
                "  workers: {} pool thread(s), {jobs} job(s); busy {:.3?}, queue-stalled {:.3?} ({util:.1}% busy)",
                workers.len(),
                busy,
                idle
            );
        }
        let sched = self.sched_counters();
        if sched.batches > 0 {
            let _ = writeln!(
                out,
                "  sched: {} job(s) in {} chunk(s), {} stolen; peak queue {}",
                sched.jobs, sched.batches, sched.steals, sched.queue_depth
            );
        }
        out
    }
}

/// Timer guard returned by [`Telemetry::time`]; attributes the elapsed
/// time on drop.
#[must_use]
pub struct PhaseTimer<'a> {
    tel: &'a Telemetry,
    phase: WallPhase,
    start: Option<Instant>,
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            self.tel.add_phase(self.phase, t0.elapsed());
        }
    }
}

/// Configuration of the background [`Reporter`] thread.
#[derive(Debug, Clone)]
pub struct ReporterConfig {
    /// Sampling interval (default one second).
    pub interval: Duration,
    /// Print a heartbeat line to stderr per sample.
    pub progress: bool,
    /// Append one JSONL snapshot per sample to this file.
    pub jsonl: Option<std::path::PathBuf>,
    /// Label in the heartbeat prefix (`[label] ...`).
    pub label: String,
}

impl Default for ReporterConfig {
    fn default() -> Self {
        ReporterConfig {
            interval: Duration::from_secs(1),
            progress: false,
            jsonl: None,
            label: "yashme".to_owned(),
        }
    }
}

/// Handle for the background sampling thread; stops and joins on drop,
/// emitting one final sample so short runs still produce output.
pub struct Reporter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Reporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reporter")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Spawns the periodic sampling thread: every `interval` it records a
/// sample into the ring buffer and emits the configured outputs (stderr
/// heartbeat, JSONL line). Returns an inert handle when `tel` is disabled.
pub fn start_reporter(tel: &Arc<Telemetry>, config: ReporterConfig) -> Reporter {
    let stop = Arc::new(AtomicBool::new(false));
    if !tel.enabled() {
        return Reporter { stop, handle: None };
    }
    let tel = Arc::clone(tel);
    let flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("yashme-telemetry".to_owned())
        .spawn(move || {
            let mut jsonl = config.jsonl.as_ref().map(|path| {
                std::fs::File::create(path)
                    .map(std::io::BufWriter::new)
                    .unwrap_or_else(|e| panic!("telemetry jsonl {}: {e}", path.display()))
            });
            let mut emit = |tel: &Telemetry| {
                let sample = tel.sample_and_record();
                if config.progress {
                    eprintln!("{}", tel.heartbeat_line(&config.label, &sample));
                }
                if let Some(out) = jsonl.as_mut() {
                    let _ = writeln!(out, "{}", tel.jsonl_line(&sample));
                    let _ = out.flush();
                }
            };
            let tick = Duration::from_millis(25).min(config.interval);
            let mut since_emit = Duration::ZERO;
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(tick);
                since_emit += tick;
                if since_emit >= config.interval {
                    since_emit = Duration::ZERO;
                    emit(&tel);
                }
            }
            // Final sample on shutdown: short runs get at least one line,
            // and the series always ends with the finished counters.
            emit(&tel);
        })
        .expect("spawn telemetry reporter");
    Reporter {
        stop,
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_records_nothing() {
        let tel = Telemetry::disabled();
        tel.add_phase(WallPhase::ProfileRun, Duration::from_secs(1));
        tel.add_events(10);
        tel.add_total(Duration::from_secs(1));
        {
            let _t = tel.time(WallPhase::Merge);
        }
        let s = tel.sample();
        assert_eq!(s.events, 0);
        assert_eq!(tel.coverage(), 0.0);
        assert_eq!(tel.phase_nanos(WallPhase::ProfileRun), 0);
    }

    #[test]
    fn coverage_counts_only_top_level_phases() {
        let tel = Telemetry::new();
        tel.add_phase(WallPhase::ProfileRun, Duration::from_millis(40));
        tel.add_phase(WallPhase::SuffixResume, Duration::from_millis(50));
        tel.add_phase(WallPhase::SnapshotCapture, Duration::from_millis(30));
        tel.add_total(Duration::from_millis(100));
        let cov = tel.coverage();
        assert!((cov - 0.9).abs() < 1e-9, "coverage {cov}");
    }

    #[test]
    fn sample_rates_use_the_previous_ring_point() {
        let tel = Telemetry::new();
        tel.add_events(1000);
        let first = tel.sample_and_record();
        assert_eq!(first.events, 1000);
        tel.add_events(500);
        let second = tel.sample_and_record();
        assert_eq!(second.events, 1500);
        assert_eq!(tel.samples().len(), 2);
    }

    #[test]
    fn eta_needs_progress_and_remaining_work() {
        let tel = Telemetry::new();
        assert!(tel.sample().eta.is_none());
        tel.add_points_total(10);
        assert!(tel.sample().eta.is_none(), "no points done yet");
        tel.add_points_done(4);
        assert!(tel.sample().eta.is_some());
        tel.add_points_done(6);
        assert!(tel.sample().eta.is_none(), "finished");
    }

    #[test]
    fn jsonl_line_is_one_object_with_stable_keys() {
        let tel = Telemetry::new();
        tel.add_events(42);
        let line = tel.jsonl_line(&tel.sample());
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        for key in [
            "t_ms",
            "events",
            "events_per_s",
            "crash_points_done",
            "crash_points_total",
            "suffixes_resumed",
            "suffixes_pruned",
            "live_slots",
            "gc_passes",
            "executions",
            "eta_ms",
        ] {
            assert!(line.contains(&format!("\"{key}\":")), "missing {key}");
        }
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let tel = Telemetry::new();
        tel.add_phase(WallPhase::ProfileRun, Duration::from_millis(5));
        tel.add_events(100);
        tel.record_worker(WorkerStat {
            busy: Duration::from_millis(3),
            idle: Duration::from_millis(1),
            jobs: 2,
        });
        for line in tel.to_prometheus().lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP ") || line.starts_with("# TYPE "));
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("metric line");
            assert!(
                name.chars().next().unwrap().is_ascii_lowercase(),
                "bad name {name:?}"
            );
            assert!(value.parse::<f64>().is_ok(), "bad value {value:?}");
        }
    }

    #[test]
    fn profile_tree_reports_coverage_and_workers() {
        let tel = Telemetry::new();
        tel.add_phase(WallPhase::ProfileRun, Duration::from_millis(60));
        tel.add_phase(WallPhase::Merge, Duration::from_millis(35));
        tel.add_phase(WallPhase::GcPass, Duration::from_millis(2));
        tel.add_total(Duration::from_millis(100));
        tel.record_worker(WorkerStat {
            busy: Duration::from_millis(50),
            idle: Duration::from_millis(10),
            jobs: 7,
        });
        let tree = tel.render_profile();
        assert!(tree.contains("profile-run"));
        assert!(tree.contains("merge"));
        assert!(tree.contains("gc-pass"));
        assert!(tree.contains("unattributed"));
        assert!(tree.contains("coverage 95.0%"));
        assert!(tree.contains("7 job(s)"));
    }

    #[test]
    fn reporter_emits_a_final_sample_on_drop() {
        let tel = Arc::new(Telemetry::new());
        tel.add_events(10);
        let reporter = start_reporter(
            &tel,
            ReporterConfig {
                interval: Duration::from_secs(60),
                ..ReporterConfig::default()
            },
        );
        drop(reporter);
        assert!(!tel.samples().is_empty(), "final sample recorded");
    }

    #[test]
    fn disabled_reporter_spawns_no_thread() {
        let tel = Arc::new(Telemetry::disabled());
        let reporter = start_reporter(&tel, ReporterConfig::default());
        drop(reporter);
        assert!(tel.samples().is_empty());
    }
}
