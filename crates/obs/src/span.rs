//! Virtual-time spans and per-run trace buffers.
//!
//! A [`TraceBuf`] belongs to exactly one simulated run: the run's sink owns
//! it, appends to plain `Vec`s (no locks, no atomics), and hands it back
//! when the run finishes. Timestamps come from the buffer's **virtual
//! clock**, which the owner ticks once per engine event — a run's trace is
//! therefore a pure function of the run, independent of wall time, machine
//! load, or which pool worker executed it.
//!
//! [`RunTrace`] merges the buffers of a whole engine invocation in *run
//! order* (profiling run first, then one buffer per crash target), giving
//! each run its own lane. That merge order is what makes the aggregate
//! trace byte-identical at every `--workers` count.

use crate::metrics::MetricsRegistry;

/// The engine phase a span or instant belongs to. Names are stable — they
/// appear in Chrome trace categories and in DESIGN.md's span taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Execution of the first (pre-crash) execution of a run.
    PreCrashExec,
    /// The injected (or end-of-phase) crash.
    CrashInjection,
    /// Execution of a post-crash (recovery) execution.
    PostCrashExec,
    /// Detector work: race-checking the post-crash reads.
    Detection,
    /// Coordinator-side merging of per-run reports and traces.
    Merge,
}

impl Phase {
    /// The stable name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::PreCrashExec => "pre-crash-exec",
            Phase::CrashInjection => "crash-injection",
            Phase::PostCrashExec => "post-crash-exec",
            Phase::Detection => "detection",
            Phase::Merge => "merge",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A closed span: `[start, start + dur)` in virtual-clock units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase taxonomy bucket (becomes the Chrome trace category).
    pub phase: Phase,
    /// Display name, e.g. `"exec 1"`.
    pub name: String,
    /// Virtual start time.
    pub start: u64,
    /// Virtual duration (0 is legal: an empty execution).
    pub dur: u64,
    /// Deterministic key/value annotations (rendered as Chrome `args`).
    pub args: Vec<(&'static str, u64)>,
}

/// A point event on a lane (e.g. a crash).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanInstant {
    /// Phase taxonomy bucket.
    pub phase: Phase,
    /// Display name, e.g. `"crash"`.
    pub name: String,
    /// Virtual timestamp.
    pub ts: u64,
    /// Deterministic key/value annotations.
    pub args: Vec<(&'static str, u64)>,
}

/// One run's trace: spans, instants, counters, and the virtual clock that
/// stamps them. Owned by a single thread for its whole life — recording is
/// plain `Vec::push`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TraceBuf {
    now: u64,
    /// Closed spans in recording order.
    pub spans: Vec<Span>,
    /// Instant events in recording order.
    pub instants: Vec<SpanInstant>,
    /// Counters and histograms local to this run.
    pub counters: MetricsRegistry,
}

impl TraceBuf {
    /// Creates an empty buffer at virtual time 0.
    pub fn new() -> Self {
        TraceBuf::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the virtual clock by one event and returns the new time.
    pub fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    /// Records a span that started at `start` and ends now.
    pub fn span_since(
        &mut self,
        phase: Phase,
        name: impl Into<String>,
        start: u64,
        args: Vec<(&'static str, u64)>,
    ) {
        self.spans.push(Span {
            phase,
            name: name.into(),
            start,
            dur: self.now.saturating_sub(start),
            args,
        });
    }

    /// Records an instant at the current virtual time.
    pub fn instant(
        &mut self,
        phase: Phase,
        name: impl Into<String>,
        args: Vec<(&'static str, u64)>,
    ) {
        self.instants.push(SpanInstant {
            phase,
            name: name.into(),
            ts: self.now,
            args,
        });
    }

    /// Appends another buffer's records (used by tee'd sinks). Spans keep
    /// their own timelines; counters merge additively.
    pub fn absorb(&mut self, other: TraceBuf) {
        self.now = self.now.max(other.now);
        self.spans.extend(other.spans);
        self.instants.extend(other.instants);
        self.counters.merge(&other.counters);
    }

    /// Total events witnessed (the final virtual time).
    pub fn events(&self) -> u64 {
        self.now
    }
}

/// The merged trace of an engine invocation: one lane per run, in run
/// order, plus a coordinator lane (lane 0) for merge activity.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RunTrace {
    /// `(lane, buffer)` pairs; lane 0 is the coordinator, runs get 1..N.
    lanes: Vec<(u64, TraceBuf)>,
    /// Aggregate counters over every lane.
    totals: MetricsRegistry,
}

/// Lane id reserved for the engine coordinator (merge spans).
pub const COORDINATOR_LANE: u64 = 0;

impl RunTrace {
    /// Creates an empty merged trace.
    pub fn new() -> Self {
        RunTrace::default()
    }

    /// Appends the next run's buffer, assigning it the next lane (1-based;
    /// lane 0 is the coordinator). Call in run order — lane assignment is
    /// what encodes the deterministic merge.
    pub fn push_run(&mut self, buf: TraceBuf) -> u64 {
        let lane = self
            .lanes
            .iter()
            .map(|(l, _)| *l)
            .max()
            .map_or(1, |l| l + 1);
        self.totals.merge(&buf.counters);
        self.lanes.push((lane, buf));
        lane
    }

    /// Sets the coordinator lane's buffer (merge spans, queue instants).
    pub fn set_coordinator(&mut self, buf: TraceBuf) {
        self.totals.merge(&buf.counters);
        self.lanes.insert(0, (COORDINATOR_LANE, buf));
    }

    /// All lanes in `(lane, buffer)` form, coordinator first.
    pub fn lanes(&self) -> &[(u64, TraceBuf)] {
        &self.lanes
    }

    /// Counters summed over every lane.
    pub fn totals(&self) -> &MetricsRegistry {
        &self.totals
    }

    /// Number of run lanes (excluding the coordinator).
    pub fn runs(&self) -> usize {
        self.lanes
            .iter()
            .filter(|(l, _)| *l != COORDINATOR_LANE)
            .count()
    }

    /// Total spans across every lane.
    pub fn span_count(&self) -> usize {
        self.lanes.iter().map(|(_, b)| b.spans.len()).sum()
    }

    /// Total virtual events across every lane.
    pub fn event_count(&self) -> u64 {
        self.lanes.iter().map(|(_, b)| b.events()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf_with(name: &str, ticks: u64) -> TraceBuf {
        let mut buf = TraceBuf::new();
        let start = buf.now();
        for _ in 0..ticks {
            buf.tick();
        }
        buf.span_since(Phase::PreCrashExec, name, start, vec![("ticks", ticks)]);
        buf
    }

    #[test]
    fn spans_use_virtual_time() {
        let buf = buf_with("exec 0", 3);
        assert_eq!(buf.spans.len(), 1);
        assert_eq!(buf.spans[0].start, 0);
        assert_eq!(buf.spans[0].dur, 3);
        assert_eq!(buf.events(), 3);
    }

    #[test]
    fn run_order_assigns_lanes_deterministically() {
        let mut trace = RunTrace::new();
        assert_eq!(trace.push_run(buf_with("a", 1)), 1);
        assert_eq!(trace.push_run(buf_with("b", 2)), 2);
        trace.set_coordinator(TraceBuf::new());
        let lanes: Vec<u64> = trace.lanes().iter().map(|(l, _)| *l).collect();
        assert_eq!(lanes, vec![0, 1, 2]);
        assert_eq!(trace.runs(), 2);
        assert_eq!(trace.span_count(), 2);
        assert_eq!(trace.event_count(), 3);
    }

    #[test]
    fn absorb_concatenates_and_merges_counters() {
        let mut a = buf_with("a", 2);
        a.counters.add("x", 1);
        let mut b = buf_with("b", 5);
        b.counters.add("x", 2);
        a.absorb(b);
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.events(), 5);
        assert_eq!(a.counters.counter("x"), 3);
    }

    #[test]
    fn instants_are_stamped_at_now() {
        let mut buf = TraceBuf::new();
        buf.tick();
        buf.tick();
        buf.instant(Phase::CrashInjection, "crash", vec![]);
        assert_eq!(buf.instants[0].ts, 2);
        assert_eq!(buf.instants[0].phase, Phase::CrashInjection);
    }
}
