//! Chrome trace-event JSON export.
//!
//! Emits the subset of the [trace-event format] that Perfetto and
//! `chrome://tracing` render: `M` (metadata) events naming each lane, `X`
//! (complete) events for spans, and `i` (instant) events. Virtual-clock
//! units map 1:1 to microseconds — durations then read as "engine events"
//! in the viewer's time axis.
//!
//! The export is deterministic: lanes come out in lane order and each
//! lane's events in `(ts, name)` order, so equal [`RunTrace`]s render to
//! byte-identical JSON.
//!
//! Two surfaces over the same serializer: [`to_chrome_json`] builds the
//! document in memory, [`write_chrome_json`] streams it event-by-event to
//! any [`io::Write`] — the chunked path soak runs use, where a
//! multi-million-event trace must never be resident as one string. Both
//! produce byte-identical output.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::io;

use crate::json::Json;
use crate::span::{RunTrace, COORDINATOR_LANE};

/// The `pid` every event carries (one logical process per engine run).
const PID: u64 = 1;

/// Renders `trace` as a complete Chrome trace-event JSON document in
/// memory. Convenience wrapper over [`write_chrome_json`].
pub fn to_chrome_json(trace: &RunTrace) -> String {
    let mut buf = Vec::new();
    write_chrome_json(trace, &mut buf).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("rendered JSON is UTF-8")
}

/// Streams `trace` as a Chrome trace-event JSON document to `out`, one
/// event at a time.
///
/// Peak buffering is one rendered event plus one lane's sort index — not
/// the whole document — so arbitrarily long traces export in bounded
/// memory (modulo the in-memory `RunTrace` itself, which callers can keep
/// small by sampling crash points). Wrap `out` in a
/// [`std::io::BufWriter`] when writing to a file.
pub fn write_chrome_json<W: io::Write>(trace: &RunTrace, out: &mut W) -> io::Result<()> {
    out.write_all(b"{\"traceEvents\":[")?;
    let mut first = true;
    macro_rules! emit {
        ($event:expr) => {{
            if first {
                first = false;
            } else {
                out.write_all(b",")?;
            }
            out.write_all($event.render().as_bytes())?;
        }};
    }
    emit!(metadata(
        "process_name",
        COORDINATOR_LANE,
        ("name", Json::from("yashme exploration")),
    ));
    for (lane, _) in trace.lanes() {
        let name = if *lane == COORDINATOR_LANE {
            "coordinator".to_owned()
        } else {
            format!("run {}", lane - 1)
        };
        emit!(metadata("thread_name", *lane, ("name", Json::from(name))));
    }
    for (lane, buf) in trace.lanes() {
        // Deterministic per-lane order even if recording interleaved spans
        // and instants: sort each kind by (ts, name), spans first.
        let mut spans: Vec<_> = buf.spans.iter().collect();
        spans.sort_by(|a, b| (a.start, &a.name).cmp(&(b.start, &b.name)));
        for span in spans {
            emit!(Json::obj([
                ("name", Json::from(span.name.as_str())),
                ("cat", Json::from(span.phase.name())),
                ("ph", Json::from("X")),
                ("ts", Json::U64(span.start)),
                ("dur", Json::U64(span.dur)),
                ("pid", Json::U64(PID)),
                ("tid", Json::U64(*lane)),
                ("args", args_obj(&span.args)),
            ]));
        }
        let mut instants: Vec<_> = buf.instants.iter().collect();
        instants.sort_by(|a, b| (a.ts, &a.name).cmp(&(b.ts, &b.name)));
        for inst in instants {
            emit!(Json::obj([
                ("name", Json::from(inst.name.as_str())),
                ("cat", Json::from(inst.phase.name())),
                ("ph", Json::from("i")),
                ("ts", Json::U64(inst.ts)),
                ("s", Json::from("t")),
                ("pid", Json::U64(PID)),
                ("tid", Json::U64(*lane)),
                ("args", args_obj(&inst.args)),
            ]));
        }
    }
    out.write_all(b"],\"displayTimeUnit\":\"ms\",\"otherData\":")?;
    out.write_all(
        Json::obj([
            ("clock", Json::from("virtual (engine events)")),
            ("runs", Json::from(trace.runs())),
            ("spans", Json::from(trace.span_count())),
            ("events", Json::U64(trace.event_count())),
        ])
        .render()
        .as_bytes(),
    )?;
    out.write_all(b"}")
}

fn metadata(name: &'static str, tid: u64, arg: (&'static str, Json)) -> Json {
    Json::obj([
        ("name", Json::from(name)),
        ("ph", Json::from("M")),
        ("pid", Json::U64(PID)),
        ("tid", Json::U64(tid)),
        ("args", Json::obj([arg])),
    ])
}

fn args_obj(args: &[(&'static str, u64)]) -> Json {
    Json::Obj(
        args.iter()
            .map(|&(k, v)| (k.to_owned(), Json::U64(v)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Phase, TraceBuf};

    fn sample_trace() -> RunTrace {
        let mut run = TraceBuf::new();
        let start = run.now();
        run.tick();
        run.tick();
        run.span_since(Phase::PreCrashExec, "exec 0", start, vec![("stores", 2)]);
        run.instant(Phase::CrashInjection, "crash", vec![]);
        let mut trace = RunTrace::new();
        trace.push_run(run);
        let mut coord = TraceBuf::new();
        coord.tick();
        coord.span_since(Phase::Merge, "merge", 0, vec![("reports", 1)]);
        trace.set_coordinator(coord);
        trace
    }

    #[test]
    fn export_contains_lanes_spans_and_instants() {
        let json = to_chrome_json(&sample_trace());
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"run 0\""), "{json}");
        assert!(json.contains("\"coordinator\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"cat\":\"pre-crash-exec\""), "{json}");
        assert!(json.contains("\"cat\":\"merge\""), "{json}");
    }

    #[test]
    fn equal_traces_render_byte_identically() {
        assert_eq!(
            to_chrome_json(&sample_trace()),
            to_chrome_json(&sample_trace())
        );
    }

    #[test]
    fn streamed_export_matches_in_memory_export() {
        // A writer that forces many small chunks (capacity 7) to prove the
        // streaming path never depends on writing the document whole.
        #[derive(Debug)]
        struct Dribble(Vec<u8>);
        impl std::io::Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let n = buf.len().min(7);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let trace = sample_trace();
        let mut out = std::io::BufWriter::new(Dribble(Vec::new()));
        write_chrome_json(&trace, &mut out).expect("stream");
        let streamed = String::from_utf8(out.into_inner().expect("flush").0).expect("utf-8");
        assert_eq!(streamed, to_chrome_json(&trace));
    }
}
