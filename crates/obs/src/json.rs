//! A minimal JSON writer with stable field order.
//!
//! The workspace's vendored `serde` is a no-op stub (the build environment
//! has no registry access), so every JSON document this repo emits — Chrome
//! traces, metrics exports, `--json` reports — is written through this
//! module. Object fields render in insertion order, which callers keep
//! stable; nothing here reorders or deduplicates.

use std::fmt::Write as _;

/// A JSON value. Construct with the `From` impls and the [`Json::obj`] /
/// [`Json::arr`] helpers; render with [`Json::render`].
///
/// Floats are deliberately absent: every number this repo exports is an
/// integer, which keeps renderings byte-stable across platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields render in the order given.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => write!(out, "{n}").expect("write to string"),
            Json::I64(n) => write!(out, "{n}").expect("write to string"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).expect("write to string"),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures_in_order() {
        let doc = Json::obj([
            ("b", Json::from(1u64)),
            ("a", Json::arr([Json::Null, Json::from(true)])),
            ("s", Json::from("hi")),
        ]);
        assert_eq!(doc.render(), r#"{"b":1,"a":[null,true],"s":"hi"}"#);
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let doc = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(doc.render(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn negative_numbers_render() {
        assert_eq!(Json::I64(-3).render(), "-3");
    }
}
