//! Counters and histograms with deterministic merge and export.

use std::collections::BTreeMap;

use crate::json::Json;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples `v` with `bit_len(v) == i`, i.e. bucket 0 is
/// exactly `{0}`, bucket 1 is `{1}`, bucket 2 is `[2, 4)`, bucket 3 is
/// `[4, 8)`, and so on. Power-of-two buckets keep merge and export exact
/// and deterministic — no floating point anywhere.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        if bucket >= self.buckets.len() {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Renders as a JSON object with stable fields.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::U64(self.count)),
            ("sum", Json::U64(self.sum)),
            ("max", Json::U64(self.max)),
            (
                "buckets",
                Json::arr(self.buckets.iter().map(|&b| Json::U64(b))),
            ),
        ])
    }
}

/// A registry of named counters and histograms.
///
/// Keys are sorted (`BTreeMap`), so iteration, merge, and export order are
/// deterministic. Canonical key strings live in [`crate::names`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the named counter (creating it at 0).
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increments the named counter by 1.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into the named histogram (creating it empty).
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges an externally built histogram into the named slot.
    pub fn insert_histogram(&mut self, name: &'static str, hist: &Histogram) {
        self.histograms.entry(name).or_default().merge(hist);
    }

    /// Counters in sorted-name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Histograms in sorted-name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Adds every counter and histogram of `other` into `self`.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&name, &value) in &other.counters {
            self.add(name, value);
        }
        for (&name, hist) in &other.histograms {
            self.histograms.entry(name).or_default().merge(hist);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Renders as a JSON object: `{"counters": {...}, "histograms": {...}}`
    /// with keys in sorted order — byte-identical for equal contents.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(&k, &v)| (k.to_owned(), Json::U64(v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(&k, h)| (k.to_owned(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 25);
        assert_eq!(h.max(), 8);
        // buckets: [0]→1, [1]→1, [2,3]→2, [4..8)→2, [8..16)→1
        let json = h.to_json().render();
        assert!(json.contains("\"buckets\":[1,1,2,2,1]"), "{json}");
    }

    #[test]
    fn merge_is_additive() {
        let mut a = MetricsRegistry::new();
        a.add("x", 2);
        a.record("h", 4);
        let mut b = MetricsRegistry::new();
        b.add("x", 3);
        b.add("y", 1);
        b.record("h", 4);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn export_is_sorted_and_stable() {
        let mut m = MetricsRegistry::new();
        m.add("zeta", 1);
        m.add("alpha", 2);
        let one = m.to_json().render();
        let two = m.clone().to_json().render();
        assert_eq!(one, two);
        let alpha = one.find("alpha").unwrap();
        let zeta = one.find("zeta").unwrap();
        assert!(alpha < zeta, "{one}");
    }
}
