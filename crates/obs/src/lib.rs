//! # obs — observability core for the exploration engine
//!
//! The paper's evaluation (§7, Tables 3–5) is a story about *where model
//! checking time goes* and *why each race was reported*. This crate is the
//! substrate for answering both questions:
//!
//! * [`TraceBuf`] — a per-run span/instant buffer stamped with a **virtual
//!   clock** (engine events, not wall time). Each simulated run owns its
//!   buffer outright, so recording is lock-free, and because a run's event
//!   stream is deterministic, so is its trace.
//! * [`RunTrace`] — buffers from many runs merged **in run order** onto one
//!   lane per run. The merged trace is byte-identical however the runs were
//!   distributed over a worker pool, the same discipline the engine uses
//!   for report merging.
//! * [`MetricsRegistry`] — named counters and power-of-two [`Histogram`]s
//!   with deterministic (sorted-key) export and merge.
//! * [`chrome`] — export of a [`RunTrace`] as Chrome trace-event JSON,
//!   loadable in Perfetto / `chrome://tracing`.
//! * [`json`] — a minimal stable-field-order JSON writer (the workspace's
//!   vendored `serde` is a no-op stub, so JSON is written by hand).
//! * [`telemetry`] — the **second plane**: wall-clock phase timers, worker
//!   utilization, and throughput time series for humans and dashboards.
//!   Explicitly nondeterministic and write-only; it never feeds back into
//!   the virtual-clock plane above (see the module docs for the contract).
//! * [`coverage`] — the **third plane**: per-site persistency verdicts
//!   (stores/flushes/fences/loads keyed by static label) and crash-space
//!   cartography, measured on the virtual clock and exported byte-identical
//!   across worker counts and fork/prune/GC strategy choices.
//!
//! `obs` depends on nothing above the standard library; `jaaru` layers the
//! engine wiring ([`SpanTraceSink`](../jaaru/sink) and trace collection) on
//! top.
//!
//! # Determinism rules
//!
//! 1. Timestamps are *virtual*: a run's clock ticks once per engine event
//!    delivered to its sink. Wall time never enters a trace.
//! 2. Lanes are per logical *run* (crash target), not per OS worker: a
//!    worker pool assigns runs to threads nondeterministically, so a
//!    per-worker lane split would change with `--workers`. Per-run lanes
//!    make the trace a pure function of the program.
//! 3. Merges happen in run order; exports sort events by
//!    `(lane, start, name)` and counters by name.

pub mod chrome;
pub mod coverage;
pub mod json;
pub mod metrics;
pub mod span;
pub mod telemetry;

pub use chrome::{to_chrome_json, write_chrome_json};
pub use coverage::{
    coverage_json, Cartography, CoverageReport, CoverageSummary, PhaseChart, SiteId, SiteKind,
    SiteStats, SiteTable, Verdict,
};
pub use json::Json;
pub use metrics::{Histogram, MetricsRegistry};
pub use span::{Phase, RunTrace, Span, SpanInstant, TraceBuf};
pub use telemetry::{
    start_reporter, Reporter, ReporterConfig, Telemetry, TelemetrySample, WallPhase, WorkerStat,
};

/// Canonical metric names, shared by the engine's registry and the
/// human-readable `--details` rendering so the two can never drift apart.
pub mod names {
    /// Instruction-level store events created (post-lowering chunks).
    pub const OPS_STORES_EXECUTED: &str = "ops.stores_executed";
    /// Store events that took effect on the cache.
    pub const OPS_STORES_COMMITTED: &str = "ops.stores_committed";
    /// Loads performed.
    pub const OPS_LOADS: &str = "ops.loads";
    /// `clflush`/`clwb` instructions executed.
    pub const OPS_FLUSHES: &str = "ops.flushes";
    /// `sfence`/`mfence` instructions executed.
    pub const OPS_FENCES: &str = "ops.fences";
    /// Locked CAS operations executed.
    pub const OPS_CAS: &str = "ops.cas";
    /// Crashes (executions pushed on the stack).
    pub const OPS_CRASHES: &str = "ops.crashes";
    /// Load bytes served by store-buffer bypass.
    pub const LOAD_BYTES_FROM_BYPASS: &str = "load.bytes_from_bypass";
    /// Load bytes served by the current execution's cache.
    pub const LOAD_BYTES_FROM_CACHE: &str = "load.bytes_from_cache";
    /// Load bytes served by the persistent image.
    pub const LOAD_BYTES_FROM_IMAGE: &str = "load.bytes_from_image";
    /// Prior-execution candidate stores scanned during load resolution.
    pub const LOAD_CANDIDATE_STORES_SCANNED: &str = "load.candidate_stores_scanned";
    /// Complete (pre-crash + post-crash) executions simulated.
    pub const ENGINE_EXECUTIONS: &str = "engine.executions";
    /// Distinct crash points discovered in the program.
    pub const ENGINE_CRASH_POINTS: &str = "engine.crash_points";
    /// Reports dropped by `(kind, label)` de-duplication during merge.
    pub const ENGINE_DEDUP_HITS: &str = "engine.dedup_hits";
    /// De-duplicated reports that survived the merge.
    pub const ENGINE_REPORTS: &str = "engine.reports";
    /// Work-queue occupancy sampled at enqueue time (see the engine docs:
    /// dequeue-side occupancy would depend on worker timing).
    pub const ENGINE_QUEUE_DEPTH: &str = "engine.queue_depth";
    /// Engine events delivered to traced sinks (virtual-clock ticks).
    pub const TRACE_EVENTS: &str = "trace.events";
    /// Spans recorded across all run lanes.
    pub const TRACE_SPANS: &str = "trace.spans";
    /// Snapshots captured at crash points during the profile run.
    pub const FORK_SNAPSHOTS: &str = "fork.snapshots";
    /// Target executions resumed from a snapshot instead of replayed in full.
    pub const FORK_RESUMED_RUNS: &str = "fork.resumed_runs";
    /// Copy-on-write clones of shared lines / queues forced by mutation.
    pub const FORK_COW_CLONES: &str = "fork.cow_clones";
    /// Bytes physically copied by those copy-on-write clones.
    pub const FORK_COW_BYTES: &str = "fork.cow_bytes";
    /// Pre-crash prefix events inherited from snapshots rather than re-executed.
    pub const FORK_PREFIX_EVENTS_SKIPPED: &str = "fork.prefix_events_skipped";
    /// Post-crash suffix events actually executed by resumed runs.
    pub const FORK_SUFFIX_EVENTS: &str = "fork.suffix_events";
    /// Distinct crash-state equivalence classes among profiled crash points.
    pub const PRUNE_CLASSES: &str = "prune.classes";
    /// Representative suffixes resumed (one per equivalence class).
    pub const PRUNE_REPRESENTATIVES: &str = "prune.representatives";
    /// Class-member suffixes skipped; results attributed from the
    /// representative instead of being executed.
    pub const PRUNE_SUFFIXES_SKIPPED: &str = "prune.suffixes_skipped";
    /// Suffix events credited to skipped members without being executed.
    pub const PRUNE_EVENTS_ATTRIBUTED: &str = "prune.events_attributed";
    /// Streaming-GC mark-sweep passes run.
    pub const GC_PASSES: &str = "gc.passes";
    /// Store events retired by streaming GC (table slot freed).
    pub const GC_EVENTS_RETIRED: &str = "gc.events_retired";
    /// Flush events dropped after their single read (or at a crash).
    pub const GC_FLUSHES_RETIRED: &str = "gc.flushes_retired";
    /// Committed-store log entries drained into the image at floor raises.
    pub const GC_LINE_ENTRIES_RETIRED: &str = "gc.line_entries_retired";
    /// Store-event table entries resident at the end of the run.
    pub const MEM_EVENT_SLOTS_LIVE: &str = "mem.event_slots_live";
    /// High-water mark of resident store-event table entries.
    pub const MEM_EVENT_SLOTS_PEAK: &str = "mem.event_slots_peak";
    /// Event-table slots handed out again after retirement.
    pub const MEM_EVENT_SLOTS_REUSED: &str = "mem.event_slots_reused";
    /// Detector flushmap entries resident at the end of the run.
    pub const DETECTOR_FLUSHMAP_LIVE: &str = "detector.flushmap_live";
    /// High-water mark of detector flushmap entries.
    pub const DETECTOR_FLUSHMAP_PEAK: &str = "detector.flushmap_peak";
}

#[cfg(test)]
mod tests {
    #[test]
    fn metric_names_are_unique() {
        let names = [
            super::names::OPS_STORES_EXECUTED,
            super::names::OPS_STORES_COMMITTED,
            super::names::OPS_LOADS,
            super::names::OPS_FLUSHES,
            super::names::OPS_FENCES,
            super::names::OPS_CAS,
            super::names::OPS_CRASHES,
            super::names::LOAD_BYTES_FROM_BYPASS,
            super::names::LOAD_BYTES_FROM_CACHE,
            super::names::LOAD_BYTES_FROM_IMAGE,
            super::names::LOAD_CANDIDATE_STORES_SCANNED,
            super::names::ENGINE_EXECUTIONS,
            super::names::ENGINE_CRASH_POINTS,
            super::names::ENGINE_DEDUP_HITS,
            super::names::ENGINE_REPORTS,
            super::names::ENGINE_QUEUE_DEPTH,
            super::names::TRACE_EVENTS,
            super::names::TRACE_SPANS,
            super::names::FORK_SNAPSHOTS,
            super::names::FORK_RESUMED_RUNS,
            super::names::FORK_COW_CLONES,
            super::names::FORK_COW_BYTES,
            super::names::FORK_PREFIX_EVENTS_SKIPPED,
            super::names::FORK_SUFFIX_EVENTS,
            super::names::PRUNE_CLASSES,
            super::names::PRUNE_REPRESENTATIVES,
            super::names::PRUNE_SUFFIXES_SKIPPED,
            super::names::PRUNE_EVENTS_ATTRIBUTED,
            super::names::GC_PASSES,
            super::names::GC_EVENTS_RETIRED,
            super::names::GC_FLUSHES_RETIRED,
            super::names::GC_LINE_ENTRIES_RETIRED,
            super::names::MEM_EVENT_SLOTS_LIVE,
            super::names::MEM_EVENT_SLOTS_PEAK,
            super::names::MEM_EVENT_SLOTS_REUSED,
            super::names::DETECTOR_FLUSHMAP_LIVE,
            super::names::DETECTOR_FLUSHMAP_PEAK,
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
