//! # yashme-repro — a reproduction of *Yashme: Detecting Persistency Races*
//!
//! This is the facade crate for a full Rust reproduction of the ASPLOS 2022
//! paper by Gorjiara, Xu, and Demsky. It re-exports every subsystem:
//!
//! * [`vclock`] — vector clocks and sequence numbers,
//! * [`pmem`] — the simulated persistent-memory address space,
//! * [`px86`] — the Px86sim store-buffer / flush-buffer model (Table 1),
//! * [`compiler_model`] — the store-optimization (tearing / memset / memcpy)
//!   compiler model (Table 2),
//! * [`jaaru`] — the model-checking execution engine with crash injection,
//! * [`yashme`] — the persistency-race detector itself,
//! * [`recipe`], [`pmdk`], [`apps`] — Rust ports of the paper's benchmarks
//!   (Tables 3–5).
//!
//! See `examples/quickstart.rs` for the paper's Figure 1 reproduced end to
//! end, and the `bench` crate's `table1`..`table5` binaries for the
//! evaluation tables.
//!
//! # Examples
//!
//! ```
//! use yashme_repro::prelude::*;
//!
//! // A single-threaded program that stores, then flushes; the flush is not
//! // forced into any consistent prefix by the post-crash reads, so the
//! // store races — the classic persistency race of Figure 1.
//! let program = Program::new("fig1")
//!     .pre_crash(|ctx: &mut Ctx| {
//!         let x = ctx.root();
//!         ctx.store_u64(x, 0x1234_5678_1234_5678, Atomicity::Plain, "pmobj->val");
//!         ctx.clflush(x);
//!     })
//!     .post_crash(|ctx: &mut Ctx| {
//!         let x = ctx.root();
//!         let _ = ctx.load_u64(x, Atomicity::Plain);
//!     });
//!
//! let report = yashme::model_check(&program);
//! assert_eq!(report.race_labels(), vec!["pmobj->val"]);
//! ```

pub use apps;
pub use compiler_model;
pub use jaaru;
pub use pmdk;
pub use pmem;
pub use px86;
pub use recipe;
pub use vclock;
pub use yashme;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use jaaru::{
        Atomicity, Ctx, Engine, ExecMode, PersistencePolicy, Program, RandomConfig, SchedPolicy,
    };
    pub use pmem::{Addr, CacheLineId, PmAllocator, PmImage, CACHE_LINE_SIZE};
    pub use vclock::{ThreadId, VectorClock};
    pub use yashme::{RaceReport, ReportKind, RunReport, YashmeConfig, YashmeDetector};
}
