//! The `yashme` command-line tool: run the persistency-race detector over
//! any registered benchmark.
//!
//! ```text
//! yashme --list
//! yashme --benchmark CCEH
//! yashme --benchmark Memcached --mode random --executions 50 --seed 7
//! yashme --all --baseline
//! yashme --benchmark Fast_Fair --eadr --details
//! yashme --benchmark CCEH --explain
//! yashme --benchmark CCEH --trace-out trace.json --metrics-out metrics.json
//! yashme --all --json
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use bench::{evaluation_suite, SuiteEntry};
use jaaru::obs::telemetry::{start_reporter, ReporterConfig, Telemetry};
use jaaru::obs::Json;
use jaaru::{EngineConfig, ExecMode};
use yashme::{json, render, YashmeConfig};

#[derive(Debug)]
struct Options {
    benchmark: Option<String>,
    all: bool,
    list: bool,
    mode: Mode,
    executions: usize,
    seed: u64,
    baseline: bool,
    eadr: bool,
    details: bool,
    explain: bool,
    json: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    // Coverage plane: per-site verdict table (human) and deterministic
    // coverage JSON (byte-identical across workers × fork/prune/GC).
    coverage: bool,
    coverage_out: Option<String>,
    // Wall-clock telemetry plane (all stderr/side-file; stdout — including
    // `--json` — is byte-identical with these on or off).
    progress: bool,
    telemetry_out: Option<String>,
    prom_out: Option<String>,
    profile: bool,
    engine: EngineConfig,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Auto,
    ModelCheck,
    Random,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            benchmark: None,
            all: false,
            list: false,
            mode: Mode::Auto,
            executions: 20,
            seed: bench::HARNESS_SEED,
            baseline: false,
            eadr: false,
            details: false,
            explain: false,
            json: false,
            trace_out: None,
            metrics_out: None,
            coverage: false,
            coverage_out: None,
            progress: false,
            telemetry_out: None,
            prom_out: None,
            profile: false,
            engine: EngineConfig::from_env(),
        }
    }
}

fn usage() -> &'static str {
    "usage: yashme (--list | --all | --benchmark <NAME>) \
     [--mode model-check|random] [--executions N] [--seed S] \
     [--workers N|auto] [--no-fork] [--no-prune] [--no-gc] \
     [--gc-every N] [--gc-paranoid] [--sample-every N] [--baseline] [--eadr] \
     [--details] [--explain] [--json] [--trace-out FILE] [--metrics-out FILE] \
     [--coverage] [--coverage-out FILE] \
     [--progress] [--telemetry-out FILE.jsonl] [--prom-out FILE] [--profile]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    // Tracked separately from `opts.engine` because `--workers` replaces
    // the whole engine config; applied once parsing is done.
    let mut no_fork = false;
    let mut no_prune = false;
    let mut no_gc = false;
    let mut gc_every = None;
    let mut gc_paranoid = false;
    let mut sample_every = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => opts.list = true,
            "--all" => opts.all = true,
            "--benchmark" | "-b" => {
                opts.benchmark = Some(
                    it.next()
                        .ok_or_else(|| "--benchmark needs a name".to_owned())?
                        .clone(),
                )
            }
            "--mode" => {
                opts.mode = match it
                    .next()
                    .ok_or_else(|| "--mode needs a value".to_owned())?
                    .as_str()
                {
                    "model-check" => Mode::ModelCheck,
                    "random" => Mode::Random,
                    other => return Err(format!("unknown mode {other:?}")),
                }
            }
            "--executions" | "-n" => {
                opts.executions = it
                    .next()
                    .ok_or_else(|| "--executions needs a number".to_owned())?
                    .parse()
                    .map_err(|e| format!("bad --executions: {e}"))?
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or_else(|| "--seed needs a number".to_owned())?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--workers" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--workers needs a count or 'auto'".to_owned())?;
                opts.engine = if v.eq_ignore_ascii_case("auto") {
                    EngineConfig::with_workers(0)
                } else {
                    EngineConfig::with_workers(
                        v.parse().map_err(|e| format!("bad --workers: {e}"))?,
                    )
                };
            }
            "--no-fork" => no_fork = true,
            "--no-prune" => no_prune = true,
            "--no-gc" => no_gc = true,
            "--gc-every" => {
                gc_every = Some(
                    it.next()
                        .ok_or_else(|| "--gc-every needs a number".to_owned())?
                        .parse()
                        .map_err(|e| format!("bad --gc-every: {e}"))?,
                )
            }
            "--gc-paranoid" => gc_paranoid = true,
            "--sample-every" => {
                sample_every = Some(
                    it.next()
                        .ok_or_else(|| "--sample-every needs a number".to_owned())?
                        .parse()
                        .map_err(|e| format!("bad --sample-every: {e}"))?,
                )
            }
            "--baseline" => opts.baseline = true,
            "--eadr" => opts.eadr = true,
            "--details" => opts.details = true,
            "--explain" => opts.explain = true,
            "--json" => opts.json = true,
            "--trace-out" => {
                opts.trace_out = Some(
                    it.next()
                        .ok_or_else(|| "--trace-out needs a path".to_owned())?
                        .clone(),
                )
            }
            "--metrics-out" => {
                opts.metrics_out = Some(
                    it.next()
                        .ok_or_else(|| "--metrics-out needs a path".to_owned())?
                        .clone(),
                )
            }
            "--coverage" => opts.coverage = true,
            "--coverage-out" => {
                opts.coverage_out = Some(
                    it.next()
                        .ok_or_else(|| "--coverage-out needs a path".to_owned())?
                        .clone(),
                )
            }
            "--progress" => opts.progress = true,
            "--telemetry-out" => {
                opts.telemetry_out = Some(
                    it.next()
                        .ok_or_else(|| "--telemetry-out needs a path".to_owned())?
                        .clone(),
                )
            }
            "--prom-out" => {
                opts.prom_out = Some(
                    it.next()
                        .ok_or_else(|| "--prom-out needs a path".to_owned())?
                        .clone(),
                )
            }
            "--profile" => opts.profile = true,
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    if !opts.list && !opts.all && opts.benchmark.is_none() {
        return Err(usage().to_owned());
    }
    if (opts.trace_out.is_some() || opts.metrics_out.is_some()) && opts.all {
        return Err(
            "--trace-out/--metrics-out need a single --benchmark (traces are per run)".to_owned(),
        );
    }
    if opts.trace_out.is_some() || opts.metrics_out.is_some() {
        // Tracing is opt-in: the engine only allocates span buffers when an
        // export was requested.
        opts.engine = opts.engine.with_trace(true);
    }
    if no_fork {
        opts.engine = opts.engine.with_fork(false);
    }
    if no_prune {
        opts.engine = opts.engine.with_prune(false);
    }
    if no_gc {
        opts.engine = opts.engine.with_gc(false);
    }
    if let Some(every) = gc_every {
        opts.engine = opts.engine.with_gc_every(every);
    }
    if gc_paranoid {
        opts.engine = opts.engine.with_gc_paranoid(true);
    }
    if let Some(every) = sample_every {
        opts.engine = opts.engine.with_sample_every(every);
    }
    Ok(opts)
}

fn config_of(opts: &Options) -> YashmeConfig {
    let mut cfg = if opts.baseline {
        YashmeConfig::baseline()
    } else {
        YashmeConfig::default()
    };
    cfg.eadr = opts.eadr;
    cfg
}

fn write_file(path: &str, contents: &str, what: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("writing {what} to {path}: {e}"))
}

/// Suite-level coverage accumulator for `--coverage-out`: per-benchmark
/// documents plus the aggregated site table (cartography doesn't sum
/// across programs, so the aggregate drops it — same as table3).
#[derive(Default)]
struct CoverageAccum {
    aggregate: jaaru::CoverageReport,
    docs: Vec<Json>,
}

fn run_one(
    entry: &SuiteEntry,
    opts: &Options,
    tel: &Arc<Telemetry>,
    docs: &mut Vec<Json>,
    cov: &mut Option<CoverageAccum>,
) -> Result<usize, String> {
    let program = (entry.program)();
    let mode = match (opts.mode, entry.mode) {
        (Mode::ModelCheck, _) => ExecMode::model_check(),
        (Mode::Random, _) => ExecMode::random(opts.executions, opts.seed),
        (Mode::Auto, bench::SuiteMode::ModelCheck) => ExecMode::model_check(),
        (Mode::Auto, bench::SuiteMode::Random(n)) => ExecMode::random(n, opts.seed),
    };
    // Scheduler stats are per-benchmark deltas of the telemetry plane's
    // cumulative counters (the plane outlives this run under --all).
    let sched_before = tel.sched_counters();
    let lanes_before = tel.worker_stats().len();
    let report = yashme::check_observed(&program, mode, config_of(opts), &opts.engine, tel);
    if opts.json {
        docs.push(json::run_json(entry.name, &report, true));
    } else {
        println!("== {} ==", entry.name);
        print!("{}", render::render_summary(&report));
        let (rows, _) = render::render_race_rows(entry.name, &report, 1);
        if rows.is_empty() {
            println!("no persistency races found");
        } else {
            print!("{rows}");
        }
        if opts.details {
            for r in report.races() {
                println!("  {}", render::render_detail(entry.name, r));
            }
            print!("{}", render::render_stats(&report));
            print!("{}", render::render_fork_stats(&report));
            print!("{}", render::render_prune_stats(&report));
            print!("{}", render::render_gc_stats(&report));
            let sched = tel.sched_counters().minus(&sched_before);
            let lanes = tel.worker_stats().split_off(lanes_before);
            print!("{}", render::render_sched_stats(&sched, &lanes));
        }
        if opts.explain {
            for (i, r) in report.races().iter().enumerate() {
                print!("{}", render::render_explain(entry.name, i + 1, r));
            }
        }
        if opts.coverage {
            print!("{}", render::render_coverage(&report));
        }
        println!();
    }
    if let Some(cov) = cov {
        cov.aggregate.absorb_suite(report.coverage());
        cov.docs.push(json::coverage_doc(entry.name, &report));
    }
    if let Some(path) = &opts.trace_out {
        let trace = report
            .trace()
            .ok_or_else(|| "engine produced no trace".to_owned())?;
        // Chunked export: the document streams to disk event-by-event
        // instead of being assembled as one in-memory string (soak traces
        // run to millions of events).
        let err = |e: std::io::Error| format!("writing chrome trace to {path}: {e}");
        let file = std::fs::File::create(path).map_err(err)?;
        let mut out = std::io::BufWriter::new(file);
        jaaru::obs::write_chrome_json(trace, &mut out).map_err(err)?;
        use std::io::Write as _;
        out.flush().map_err(err)?;
    }
    if let Some(path) = &opts.metrics_out {
        let mut doc = report.metrics().to_json().render();
        doc.push('\n');
        write_file(path, &doc, "metrics")?;
    }
    Ok(report.race_labels().len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut suite = evaluation_suite();
    // Extension benchmarks (beyond the paper's evaluation).
    suite.push(SuiteEntry {
        name: "x-skiplist",
        program: || extras::pskiplist::program(extras::Variant::Racy),
        mode: bench::SuiteMode::ModelCheck,
    });
    suite.push(SuiteEntry {
        name: "x-skiplist-fixed",
        program: || extras::pskiplist::program(extras::Variant::Fixed),
        mode: bench::SuiteMode::ModelCheck,
    });
    suite.push(SuiteEntry {
        name: "x-queue",
        program: || extras::pqueue::program(extras::Variant::Racy),
        mode: bench::SuiteMode::ModelCheck,
    });
    suite.push(SuiteEntry {
        name: "x-queue-fixed",
        program: || extras::pqueue::program(extras::Variant::Fixed),
        mode: bench::SuiteMode::ModelCheck,
    });
    suite.push(SuiteEntry {
        name: "x-stack",
        program: || extras::pstack::program(extras::Variant::Racy),
        mode: bench::SuiteMode::ModelCheck,
    });
    suite.push(SuiteEntry {
        name: "x-stack-fixed",
        program: || extras::pstack::program(extras::Variant::Fixed),
        mode: bench::SuiteMode::ModelCheck,
    });
    suite.push(SuiteEntry {
        name: "x-pmemlog",
        program: pmdk::plog::program,
        mode: bench::SuiteMode::ModelCheck,
    });
    if opts.list {
        println!("registered benchmarks:");
        for e in &suite {
            println!(
                "  {:<16} ({})",
                e.name,
                match e.mode {
                    bench::SuiteMode::ModelCheck => "model-check",
                    bench::SuiteMode::Random(_) => "random",
                }
            );
        }
        return ExitCode::SUCCESS;
    }
    // Wall-clock telemetry plane: enabled by any of its four flags. The
    // reporter thread emits heartbeats/JSONL to stderr/side files only, so
    // stdout (human tables or `--json`) can never interleave with it.
    // `--details` rides along: its scheduler stats read the plane's
    // counters, and the reporter stays silent without progress/jsonl flags.
    let telemetry_on = opts.progress
        || opts.telemetry_out.is_some()
        || opts.prom_out.is_some()
        || opts.profile
        || opts.details;
    let tel = if telemetry_on {
        Arc::new(Telemetry::new())
    } else {
        Arc::clone(Telemetry::off())
    };
    let reporter = start_reporter(
        &tel,
        ReporterConfig {
            progress: opts.progress,
            jsonl: opts.telemetry_out.clone().map(Into::into),
            ..ReporterConfig::default()
        },
    );
    let mut total = 0;
    let mut docs = Vec::new();
    let mut cov = opts.coverage_out.as_ref().map(|_| CoverageAccum::default());
    let mut run = |e: &SuiteEntry| match run_one(e, &opts, &tel, &mut docs, &mut cov) {
        Ok(n) => {
            total += n;
            true
        }
        Err(msg) => {
            eprintln!("{msg}");
            false
        }
    };
    if opts.all {
        for e in &suite {
            if !run(e) {
                return ExitCode::from(2);
            }
        }
    } else if let Some(name) = &opts.benchmark {
        match suite.iter().find(|e| e.name.eq_ignore_ascii_case(name)) {
            Some(e) => {
                if !run(e) {
                    return ExitCode::from(2);
                }
            }
            None => {
                eprintln!("unknown benchmark {name:?}; try --list");
                return ExitCode::from(2);
            }
        }
    }
    // Stop the reporter (it emits one final sample) before rendering the
    // post-run telemetry artifacts.
    drop(reporter);
    if let Some(path) = &opts.prom_out {
        if let Err(msg) = write_file(path, &tel.to_prometheus(), "prometheus metrics") {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    }
    if opts.profile {
        eprint!("{}", tel.render_profile());
    }
    if let (Some(path), Some(cov)) = (&opts.coverage_out, cov) {
        let doc = json::coverage_suite_json("yashme", &cov.aggregate, cov.docs);
        if let Err(msg) = write_file(path, &format!("{}\n", doc.render()), "coverage") {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    }
    if opts.json {
        println!("{}", json::suite_json(docs, total).render());
    } else {
        println!("total: {total} persistency race(s)");
    }
    // Exit code 1 when races were found, like a linter.
    if total > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
