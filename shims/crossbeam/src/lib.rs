//! Offline stub of `crossbeam`: the `channel` and `deque` modules, enough
//! for the engine's multi-producer/multi-consumer work queues and the
//! suite-global work-stealing scheduler.

pub mod deque {
    //! Work-stealing deques over a `Mutex<VecDeque>`.
    //!
    //! API shape matches `crossbeam-deque` where the workspace uses it:
    //! a [`Worker`] deque owned by one pool lane, [`Stealer`] handles that
    //! other lanes use to take work from it, a shared [`Injector`] for
    //! submitted batches, and the [`Steal`] result triple. The lock-free
    //! Chase-Lev machinery of the real crate is replaced by a mutex; the
    //! scheduler's unit of work is a whole cost-bucketed chunk, so queue
    //! operations are far off the hot path and a mutex is plenty.
    //!
    //! One deliberate simplification: the stub's [`Worker`] is `Sync` (the
    //! real one is owner-only), which lets the scheduler keep every lane in
    //! one vector. "Owner pops, others steal" remains a convention enforced
    //! by the scheduler, not the type system.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and may be retried. The mutex-backed
        /// stub never loses races; the variant exists for API parity.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    fn lock<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        q.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A FIFO deque owned by one scheduler lane.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker deque.
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the deque.
        pub fn push(&self, task: T) {
            lock(&self.inner).push_back(task);
        }

        /// Pops the next task in FIFO order.
        pub fn pop(&self) -> Option<T> {
            lock(&self.inner).pop_front()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            lock(&self.inner).len()
        }

        /// Whether the deque is empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.inner).is_empty()
        }

        /// Creates a steal handle onto this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: self.inner.clone(),
            }
        }
    }

    /// A handle other lanes use to steal from a [`Worker`] deque.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task from the owning worker's deque.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.inner).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// A shared FIFO queue that batches enter the scheduler through.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            lock(&self.inner).push_back(task);
        }

        /// Steals one task.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.inner).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals up to half the queue (capped like the real crate) into
        /// `dest`, returning one task to run immediately.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = lock(&self.inner);
            let first = match q.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            let extra = (q.len() / 2).min(32);
            for _ in 0..extra {
                match q.pop_front() {
                    Some(t) => dest.push(t),
                    None => break,
                }
            }
            Steal::Success(first)
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            lock(&self.inner).len()
        }

        /// Whether the injector is empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.inner).is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_is_fifo_and_stealable() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(1));
            assert_eq!(s.steal().success(), Some(2));
            assert_eq!(w.pop(), Some(3));
            assert!(s.steal().is_empty());
        }

        #[test]
        fn injector_batch_steal_moves_half() {
            let inj = Injector::new();
            for i in 0..9 {
                inj.push(i);
            }
            let w = Worker::new_fifo();
            assert_eq!(inj.steal_batch_and_pop(&w).success(), Some(0));
            // 8 remained; half (4) moved to the worker.
            assert_eq!(w.len(), 4);
            assert_eq!(inj.len(), 4);
        }
    }
}

pub mod channel {
    //! MPMC channels over a `Mutex<VecDeque>` + `Condvar`.
    //!
    //! Semantics match crossbeam-channel where the workspace uses it:
    //! cloneable senders and receivers, [`Receiver::recv`] blocking until a
    //! message arrives or every sender is dropped, and iteration draining
    //! until disconnect.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// Creates a channel with `cap` pre-reserved slots. The stub does not
    /// enforce the bound (sends never block); the workspace only uses
    /// capacities as sizing hints for fan-out queues filled before workers
    /// start.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = unbounded();
        tx.inner
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .reserve(cap);
        (tx, rx)
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half; cloneable for multiple producers.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Receiver count is not tracked: a send after all receivers drop
            // parks the value harmlessly, which crossbeam reports as an
            // error only to aid debugging. The workspace never does this.
            self.inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.ready.notify_all();
            }
        }
    }

    /// The receiving half; cloneable for multiple consumers.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .inner
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.inner.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Iterates until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_fan_in() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut seen: Vec<i32> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || rx.iter().collect::<Vec<_>>())
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            seen.sort_unstable();
            assert_eq!(seen, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
