//! Offline stub of `crossbeam`: the `channel` module only, enough for the
//! engine's multi-producer/multi-consumer work queues.

pub mod channel {
    //! MPMC channels over a `Mutex<VecDeque>` + `Condvar`.
    //!
    //! Semantics match crossbeam-channel where the workspace uses it:
    //! cloneable senders and receivers, [`Receiver::recv`] blocking until a
    //! message arrives or every sender is dropped, and iteration draining
    //! until disconnect.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// Creates a channel with `cap` pre-reserved slots. The stub does not
    /// enforce the bound (sends never block); the workspace only uses
    /// capacities as sizing hints for fan-out queues filled before workers
    /// start.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = unbounded();
        tx.inner
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .reserve(cap);
        (tx, rx)
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half; cloneable for multiple producers.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Receiver count is not tracked: a send after all receivers drop
            // parks the value harmlessly, which crossbeam reports as an
            // error only to aid debugging. The workspace never does this.
            self.inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.ready.notify_all();
            }
        }
    }

    /// The receiving half; cloneable for multiple consumers.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .inner
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.inner.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Iterates until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_fan_in() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut seen: Vec<i32> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || rx.iter().collect::<Vec<_>>())
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            seen.sort_unstable();
            assert_eq!(seen, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
