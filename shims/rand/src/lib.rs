//! Offline stub of the `rand` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! small slice of the rand 0.8 API it uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`]/[`Rng::gen_bool`].
//! The generator is xoshiro256++ seeded through splitmix64 — statistically
//! solid and fully deterministic per seed, which is all the engine needs
//! (the repo's seeds are documented constants, not security material).
//!
//! NOTE: the byte streams differ from upstream rand's ChaCha12-based
//! `StdRng`, so seed-sensitive outputs (e.g. the harness seed chosen by
//! `bench --bin seedscan`) are calibrated against *this* generator.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Creates a generator from OS entropy. The stub derives it from the
    /// system clock — good enough for the non-reproducible paths that would
    /// call it (none in this workspace today).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(nanos)
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i32: u32, i64: u64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 bits of mantissa: uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the stub's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = Self::splitmix64(&mut state);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_per_seed() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn ranges_stay_in_bounds() {
            let mut r = StdRng::seed_from_u64(1);
            for _ in 0..1000 {
                let x: usize = r.gen_range(3..17);
                assert!((3..17).contains(&x));
                let y: u64 = r.gen_range(0..=5);
                assert!(y <= 5);
            }
        }

        #[test]
        fn gen_bool_extremes() {
            let mut r = StdRng::seed_from_u64(2);
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
