//! Offline stub of the `serde` facade.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the minimal API surface it uses: the `Serialize`/`Deserialize`
//! trait names and their derive macros. The derives expand to nothing — the
//! repo only derives the traits for forward compatibility and never
//! serializes through them. Swapping back to real serde is a one-line
//! change in the workspace `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (never implemented by the no-op
/// derive; present so `use serde::Serialize` keeps resolving).
pub trait SerializeTrait {}

/// Marker stand-in for `serde::Deserialize` (see [`SerializeTrait`]).
pub trait DeserializeTrait<'de> {}
