//! No-op `Serialize`/`Deserialize` derives for the offline `serde` stub.
//!
//! The derives accept (and ignore) `#[serde(...)]` helper attributes so
//! annotated types keep compiling; no serialization code is generated.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
