//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! Replicates the two semantic differences the engine relies on:
//! `lock()` returns the guard directly (no `Result`), and a panicking
//! holder does not poison the lock — a crash-unwinding simulated task must
//! not wedge the scheduler mutex for the remaining tasks.

use std::sync::PoisonError;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]; unlocks on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking the current thread. Poison from a
    /// panicked holder is ignored, matching parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside wait")
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases `guard`'s lock and blocks until notified; the
    /// lock is re-acquired before returning (parking_lot signature: the
    /// guard is updated in place).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*pair2;
            let mut g = m.lock();
            while !*g {
                c.wait(&mut g);
            }
        });
        {
            let (m, c) = &*pair;
            *m.lock() = true;
            c.notify_all();
        }
        t.join().unwrap();
    }
}
