//! Offline stub of `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, [`Just`], [`any`],
//! integer-range and tuple strategies, `collection::vec`, weighted
//! `prop_oneof!`, and the `proptest!`/`prop_assert*` macros. Differences
//! from upstream: no shrinking (a failing case reports its seed and values
//! but is not minimized), and case generation is seeded deterministically
//! from the test name, so failures reproduce without a persistence file.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test case generator, seeded from the test's name.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a generator seeded from `name` (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }

    /// Draws a uniform value from `range`.
    pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }

    /// Draws a raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Number of cases to run per property (the config subset used here).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases generated per property test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 128 keeps the engine-heavy suites quick
        // while still exercising the generators broadly.
        ProptestConfig { cases: 128 }
    }
}

/// A generator of test values. Object-safe: combinators require `Sized`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing a single fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Weighted union of boxed strategies; built by `prop_oneof!`.
pub struct OneOf<V> {
    choices: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u32,
}

impl<V> OneOf<V> {
    /// Creates a union; weights must sum to a positive value.
    pub fn new(choices: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total = choices.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof: zero total weight");
        OneOf { choices, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strategy) in &self.choices {
            if pick < *weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights summed in constructor")
    }
}

pub mod collection {
    //! Collection strategies (`vec` only).

    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max: len + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec: empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$attr:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Builds a weighted or unweighted union strategy.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>)),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>)),+
        ])
    };
}

/// Asserts a condition, failing the current case (not the process) so the
/// harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality within a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $fmt:literal $(, $arg:expr)* $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                format!($fmt $(, $arg)*)
            )));
        }
    }};
}

/// Asserts inequality within a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    /// Namespace alias matching upstream's `prelude::prop`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn oneof_respects_weights_roughly() {
        let strategy = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::TestRng::from_name("weights");
        let trues = (0..1000)
            .filter(|_| Strategy::generate(&strategy, &mut rng))
            .count();
        assert!(trues > 700, "trues: {trues}");
    }

    proptest! {
        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn map_applies(x in (0u32..5).prop_map(|x| x * 2)) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honored(_x in 0u8..255) {
            // Runs; the case count is implicit in not hanging.
        }
    }
}
