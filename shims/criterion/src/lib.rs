//! Offline stub of `criterion`.
//!
//! Supports the API the workspace's benches use — `benchmark_group`,
//! `sample_size`, `bench_with_input`, `bench_function`, `BenchmarkId`, and
//! the `criterion_group!`/`criterion_main!` macros — timing each benchmark
//! with `Instant` and printing mean/min per-iteration wall time. No
//! statistical analysis, HTML reports, or outlier rejection.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export-compatible `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and parameter display.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, once per sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.elapsed.push(start.elapsed());
        }
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    fn run(&mut self, id: String, mut body: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.samples,
            elapsed: Vec::with_capacity(self.samples),
        };
        body(&mut bencher);
        let total: Duration = bencher.elapsed.iter().sum();
        let mean = total
            .checked_div(bencher.elapsed.len().max(1) as u32)
            .unwrap_or_default();
        let min = bencher.elapsed.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{}: mean {:?}, min {:?} ({} samples)",
            self.name,
            id,
            mean,
            min,
            bencher.elapsed.len()
        );
    }

    /// Benchmarks `body` with a fixed `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| body(b, input));
        self
    }

    /// Benchmarks a nullary closure.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), &mut body);
        self
    }

    /// Ends the group (printing happened per-benchmark).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a nullary closure outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("bench")
            .bench_function(name.into(), body);
        self
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
